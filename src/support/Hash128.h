//===- support/Hash128.h - 128-bit streaming content hash --------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming 128-bit content hash: two independent FNV-1a lanes over
/// the same byte stream (the second lane whitens each byte with a different
/// constant and uses its own offset basis), finished with a 64-bit avalanche
/// mix per lane. Used as the call-summary memo key over exact abstract-state
/// representations, where a collision would silently substitute one call
/// context's result for another's — at 128 bits the collision probability
/// across the <= ~10^6 distinct contexts of one analysis is ~2^-88, far
/// below any per-run hardware error rate, which is the documented acceptance
/// bar for keying the memo on the digest alone.
///
/// Not cryptographic and not seed-randomized on purpose: the digest must be
/// a pure function of the fed representation so memo hits are reproducible
/// across workers and runs.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SUPPORT_HASH128_H
#define ASTRAL_SUPPORT_HASH128_H

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

namespace astral {
namespace support {

class Hash128 {
public:
  /// Feeds \p Len raw bytes.
  void bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      A = (A ^ P[I]) * Prime;
      B = (B ^ (P[I] + 0x9eu)) * Prime;
    }
  }

  void u8(uint8_t V) { bytes(&V, sizeof V); }
  void u32(uint32_t V) { bytes(&V, sizeof V); }
  void u64(uint64_t V) { bytes(&V, sizeof V); }
  void boolean(bool V) { u8(V ? 1 : 0); }

  /// Doubles are fed by bit pattern: the memo key must distinguish -0.0
  /// from 0.0 and any NaN payloads exactly as the lattice representation
  /// stores them (bitwise-identical input is the contract, not numeric
  /// equality).
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }

  /// Length-prefixed so consecutive strings never alias ("ab","c" vs
  /// "a","bc").
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }

  /// The 128-bit digest, avalanche-mixed per lane.
  std::pair<uint64_t, uint64_t> digest() const {
    return {mix(A), mix(B ^ 0x6a09e667f3bcc909ull)};
  }

private:
  static uint64_t mix(uint64_t X) {
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdull;
    X ^= X >> 33;
    X *= 0xc4ceb9fe1a85ec53ull;
    X ^= X >> 33;
    return X;
  }

  static constexpr uint64_t Prime = 0x100000001b3ull;
  uint64_t A = 0xcbf29ce484222325ull;
  uint64_t B = 0x84222325cbf29ce4ull;
};

} // namespace support
} // namespace astral

#endif // ASTRAL_SUPPORT_HASH128_H
