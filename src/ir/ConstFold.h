//===- ir/ConstFold.h - Constant folding & global census ---------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the Sect. 5.1 preprocessing optimizations: "syntactically
/// constant expressions are evaluated and replaced by their value. Unused
/// global variables are then deleted. This phase is important since the
/// analyzed programs use large arrays representing hardware features with
/// constant subscripts; those arrays are thus optimized away."
///
/// Folding is conservative: an operation is only folded when it provably has
/// no run-time error (no overflow, no division by zero), so checking mode
/// still sees every possibly-erroneous operation.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_IR_CONSTFOLD_H
#define ASTRAL_IR_CONSTFOLD_H

#include "ir/Ir.h"

namespace astral {
namespace ir {

struct ConstFoldStats {
  uint64_t FoldedExprs = 0;
  uint64_t ConstLoadsReplaced = 0;
  uint64_t GlobalsDeleted = 0;
  uint64_t InitAssignsDropped = 0;
};

/// Runs folding + the usage census over \p P in place. Returns statistics.
ConstFoldStats foldConstants(Program &P);

} // namespace ir
} // namespace astral

#endif // ASTRAL_IR_CONSTFOLD_H
