//===- ir/Lowering.h - AST to IR lowering ------------------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the type-checked AST into the analyzer IR (Sect. 5.1). This is the
/// "program transformation" step of Sect. 5.4: side effects and function
/// calls are hoisted out of conditions, short-circuit operators and ?: in
/// value position are materialized through temporaries and explicit control
/// flow, for/do-while are rewritten to while, aggregate copies are expanded
/// field-wise, and every variable gets a VarInfo record.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_IR_LOWERING_H
#define ASTRAL_IR_LOWERING_H

#include "ir/Ir.h"
#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <memory>

namespace astral {
namespace ir {

class Lowering {
public:
  Lowering(AstContext &Ast, DiagnosticsEngine &Diags)
      : Ast(Ast), Diags(Diags) {}

  /// Lowers the translation unit; \p EntryName is the analysis entry point
  /// (Sect. 5.3 "a user-supplied entry point ... such as the main function").
  /// Returns null if errors were reported.
  std::unique_ptr<Program> run(const std::string &EntryName = "main");

private:
  VarId newTemp(const Type *Ty, const char *Prefix);
  LValue tempLValue(VarId V, const Type *Ty, SourceLocation Loc) const;

  void emitAssign(std::vector<Stmt *> &Out, LValue Lv, const Expr *E,
                  SourceLocation Loc);
  Stmt *seq(std::vector<Stmt *> Stmts, SourceLocation Loc);

  Stmt *lowerStmt(const astral::Stmt *S);
  void lowerStmtInto(const astral::Stmt *S, std::vector<Stmt *> &Out);
  void lowerLocalDecl(VarDecl *V, std::vector<Stmt *> &Out);
  void lowerVarInit(VarId Target, VarDecl *V, std::vector<Stmt *> &Out,
                    bool ZeroDefault);
  void initLeaves(const LValue &Base, const Type *Ty,
                  const std::vector<astral::Expr *> &Flat, size_t &Next,
                  bool ZeroDefault, SourceLocation Loc,
                  std::vector<Stmt *> &Out);

  const Expr *lowerExpr(const astral::Expr *E, std::vector<Stmt *> &Out);
  /// Lowers an expression used only for its effects and checks.
  void lowerDiscard(const astral::Expr *E, std::vector<Stmt *> &Out);
  /// Lowers a condition, preserving comparison / &&, ||, ! structure for the
  /// guard transfer function; hoisted side effects go to \p Out.
  const Expr *lowerCond(const astral::Expr *E, std::vector<Stmt *> &Out);
  LValue lowerLValue(const astral::Expr *E, std::vector<Stmt *> &Out);
  const Expr *lowerAssign(const astral::Expr *E, std::vector<Stmt *> &Out);
  const Expr *lowerIncDec(const astral::Expr *E, std::vector<Stmt *> &Out);
  void lowerCall(const astral::Expr *E, std::optional<LValue> RetTo,
                 std::vector<Stmt *> &Out);
  void lowerAggregateCopy(const LValue &Dst, const LValue &Src,
                          const Type *Ty, SourceLocation Loc,
                          std::vector<Stmt *> &Out);

  const Expr *constInt(int64_t V, const Type *Ty, SourceLocation Loc);
  const Expr *castTo(const Expr *E, const Type *Ty);
  const Expr *loadOf(const LValue &Lv);

  AstContext &Ast;
  DiagnosticsEngine &Diags;
  std::unique_ptr<Program> P;
  FuncId CurFunc = NoFunc;
  /// Return-value holder of the function being lowered.
  VarId CurRetVar = NoVar;
};

} // namespace ir
} // namespace astral

#endif // ASTRAL_IR_LOWERING_H
