//===- ir/Lowering.cpp - AST to IR lowering --------------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include <cassert>

using namespace astral::ir;
using astral::AstContext;
using astral::BinaryOp;
using astral::DiagnosticsEngine;
using astral::SourceLocation;
using astral::StorageKind;
using astral::Type;
using astral::UnaryOp;
using astral::VarDecl;
using astral::FuncDecl;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

VarId Lowering::newTemp(const Type *Ty, const char *Prefix) {
  VarInfo VI;
  VI.Name = std::string(Prefix) + std::to_string(P->Vars.size());
  VI.Ty = Ty;
  VI.IsTemp = true;
  VI.Owner = CurFunc;
  P->Vars.push_back(std::move(VI));
  return static_cast<VarId>(P->Vars.size() - 1);
}

LValue Lowering::tempLValue(VarId V, const Type *Ty,
                            SourceLocation Loc) const {
  LValue Lv;
  Lv.Base = V;
  Lv.Ty = Ty;
  Lv.Loc = Loc;
  return Lv;
}

const Expr *Lowering::constInt(int64_t V, const Type *Ty,
                               SourceLocation Loc) {
  Expr *E = P->newExpr(ExprKind::ConstInt, Ty, Loc);
  E->IntVal = V;
  return E;
}

const Expr *Lowering::castTo(const Expr *E, const Type *Ty) {
  if (E->Ty == Ty)
    return E;
  Expr *C = P->newExpr(ExprKind::Cast, Ty, E->Loc);
  C->A = E;
  return C;
}

const Expr *Lowering::loadOf(const LValue &Lv) {
  Expr *L = P->newExpr(ExprKind::Load, Lv.Ty, Lv.Loc);
  L->Lv = Lv;
  return L;
}

void Lowering::emitAssign(std::vector<Stmt *> &Out, LValue Lv, const Expr *E,
                          SourceLocation Loc) {
  Stmt *S = P->newStmt(StmtKind::Assign, Loc);
  S->Lhs = std::move(Lv);
  S->Rhs = E;
  Out.push_back(S);
}

Stmt *Lowering::seq(std::vector<Stmt *> Stmts, SourceLocation Loc) {
  if (Stmts.size() == 1)
    return Stmts[0];
  Stmt *S = P->newStmt(StmtKind::Seq, Loc);
  S->Stmts = std::move(Stmts);
  return S;
}

//===----------------------------------------------------------------------===//
// LValues
//===----------------------------------------------------------------------===//

LValue Lowering::lowerLValue(const astral::Expr *E, std::vector<Stmt *> &Out) {
  LValue Lv;
  Lv.Ty = E->Ty;
  Lv.Loc = E->Loc;
  switch (E->Kind) {
  case astral::ExprKind::DeclRef:
    assert(E->Var && "lvalue DeclRef without decl");
    Lv.Base = E->Var->UniqueId;
    return Lv;
  case astral::ExprKind::ArraySubscript: {
    Lv = lowerLValue(E->Lhs, Out);
    // Subscripting a pointer parameter means indexing the bound array.
    if (E->Lhs->Ty->isPointer())
      Lv.Path.push_back(Access{Access::Kind::Deref, -1, nullptr});
    const Expr *Idx = lowerExpr(E->Rhs, Out);
    Lv.Path.push_back(Access{Access::Kind::Index, -1, Idx});
    Lv.Ty = E->Ty;
    Lv.Loc = E->Loc;
    return Lv;
  }
  case astral::ExprKind::Member: {
    Lv = lowerLValue(E->Lhs, Out);
    if (E->IsArrow)
      Lv.Path.push_back(Access{Access::Kind::Deref, -1, nullptr});
    Lv.Path.push_back(Access{Access::Kind::Field, E->FieldIdx, nullptr});
    Lv.Ty = E->Ty;
    Lv.Loc = E->Loc;
    return Lv;
  }
  case astral::ExprKind::Unary:
    if (E->UOp == UnaryOp::Deref) {
      Lv = lowerLValue(E->Lhs, Out);
      Lv.Path.push_back(Access{Access::Kind::Deref, -1, nullptr});
      Lv.Ty = E->Ty;
      Lv.Loc = E->Loc;
      return Lv;
    }
    break;
  default:
    break;
  }
  Diags.error(E->Loc, "expression is not an assignable location");
  Lv.Base = 0;
  return Lv;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static BinOp lowerBinOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return BinOp::Add;
  case BinaryOp::Sub: return BinOp::Sub;
  case BinaryOp::Mul: return BinOp::Mul;
  case BinaryOp::Div: return BinOp::Div;
  case BinaryOp::Rem: return BinOp::Rem;
  case BinaryOp::Shl: return BinOp::Shl;
  case BinaryOp::Shr: return BinOp::Shr;
  case BinaryOp::BitAnd: return BinOp::And;
  case BinaryOp::BitOr: return BinOp::Or;
  case BinaryOp::BitXor: return BinOp::Xor;
  case BinaryOp::Lt: return BinOp::Lt;
  case BinaryOp::Le: return BinOp::Le;
  case BinaryOp::Gt: return BinOp::Gt;
  case BinaryOp::Ge: return BinOp::Ge;
  case BinaryOp::Eq: return BinOp::Eq;
  case BinaryOp::Ne: return BinOp::Ne;
  case BinaryOp::LogicalAnd: return BinOp::LogicalAnd;
  case BinaryOp::LogicalOr: return BinOp::LogicalOr;
  case BinaryOp::Comma: return BinOp::Add; // Handled before dispatch.
  }
  return BinOp::Add;
}

const Expr *Lowering::lowerAssign(const astral::Expr *E,
                                  std::vector<Stmt *> &Out) {
  LValue Lv = lowerLValue(E->Lhs, Out);
  const Type *LTy = E->Lhs->Ty;

  if (LTy->isStruct()) {
    // Aggregate copy, expanded field-wise (field-sensitive abstraction,
    // Sect. 6.1.1).
    LValue Src = lowerLValue(E->Rhs, Out);
    lowerAggregateCopy(Lv, Src, LTy, E->Loc, Out);
    return loadOf(Lv); // Struct loads are never consumed as scalars.
  }

  const Expr *Stored;
  if (E->IsPlainAssign) {
    Stored = castTo(lowerExpr(E->Rhs, Out), LTy);
  } else {
    // lhs op= rhs computes in the usual arithmetic type, then converts back.
    const Expr *L = loadOf(Lv);
    const Expr *R = lowerExpr(E->Rhs, Out);
    const Type *CTy = E->Rhs->Ty; // Sema checked both are arithmetic.
    // Usual arithmetic conversion between LTy and the rhs type.
    if (LTy->isFloat() || CTy->isFloat()) {
      bool Dbl = (LTy->isFloat() && LTy->IsDouble) ||
                 (CTy->isFloat() && CTy->IsDouble);
      CTy = Dbl ? Ast.Types.doubleType() : Ast.Types.floatType();
    } else {
      unsigned W = std::max(32u, std::max(LTy->IntWidth, CTy->IntWidth));
      bool Sgn = LTy->IntSigned && CTy->IntSigned;
      CTy = Ast.Types.intType(W, Sgn);
    }
    Expr *Bin = P->newExpr(ExprKind::Binary, CTy, E->Loc);
    Bin->BO = lowerBinOp(E->BOp);
    Bin->A = castTo(L, CTy);
    Bin->B = castTo(R, CTy);
    Stored = castTo(Bin, LTy);
  }
  emitAssign(Out, Lv, Stored, E->Loc);
  return Stored;
}

const Expr *Lowering::lowerIncDec(const astral::Expr *E,
                                  std::vector<Stmt *> &Out) {
  LValue Lv = lowerLValue(E->Lhs, Out);
  const Type *Ty = E->Lhs->Ty;
  bool IsInc = E->UOp == UnaryOp::PreInc || E->UOp == UnaryOp::PostInc;
  bool IsPost = E->UOp == UnaryOp::PostInc || E->UOp == UnaryOp::PostDec;

  const Expr *Old = loadOf(Lv);
  const Expr *SavedOld = nullptr;
  if (IsPost) {
    VarId T = newTemp(Ty, "__old");
    LValue TLv = tempLValue(T, Ty, E->Loc);
    emitAssign(Out, TLv, Old, E->Loc);
    SavedOld = loadOf(TLv);
    Old = SavedOld;
  }
  const Type *CTy = Ty->isFloat()
                        ? Ty
                        : Ast.Types.intType(std::max(32u, Ty->IntWidth),
                                            Ty->IntSigned);
  const Expr *One = Ty->isFloat()
                        ? [&] {
                            Expr *F = P->newExpr(ExprKind::ConstFloat, CTy,
                                                 E->Loc);
                            F->FloatVal = 1.0;
                            return static_cast<const Expr *>(F);
                          }()
                        : constInt(1, CTy, E->Loc);
  Expr *Bin = P->newExpr(ExprKind::Binary, CTy, E->Loc);
  Bin->BO = IsInc ? BinOp::Add : BinOp::Sub;
  Bin->A = castTo(Old, CTy);
  Bin->B = One;
  const Expr *Stored = castTo(Bin, Ty);
  emitAssign(Out, Lv, Stored, E->Loc);
  return IsPost ? SavedOld : Stored;
}

void Lowering::lowerCall(const astral::Expr *E, std::optional<LValue> RetTo,
                         std::vector<Stmt *> &Out) {
  FuncDecl *F = E->Callee;
  assert(F && "call without callee");

  // Builtin directives.
  if (F->IsBuiltin) {
    if (F->Name == "__astral_wait") {
      Out.push_back(P->newStmt(StmtKind::Wait, E->Loc));
      return;
    }
    if (F->Name == "__astral_assume" || F->Name == "__astral_assert") {
      Stmt *S = P->newStmt(F->Name == "__astral_assume" ? StmtKind::Assume
                                                        : StmtKind::Assert,
                           E->Loc);
      if (E->Args.size() == 1)
        S->Cond = lowerCond(E->Args[0], Out);
      else
        S->Cond = constInt(1, Ast.Types.intTy(), E->Loc);
      Out.push_back(S);
      return;
    }
  }

  Stmt *S = P->newStmt(StmtKind::Call, E->Loc);
  S->Callee = F->UniqueId;
  for (size_t I = 0; I < E->Args.size(); ++I) {
    const astral::Expr *Arg = E->Args[I];
    const Type *PTy = I < F->FnTy->Params.size() ? F->FnTy->Params[I]
                                                 : Arg->Ty;
    CallArg CA;
    if (PTy->isPointer()) {
      CA.IsRef = true;
      if (Arg->is(astral::ExprKind::Unary) && Arg->UOp == UnaryOp::AddrOf) {
        CA.Ref = lowerLValue(Arg->Lhs, Out);
      } else if (Arg->Ty->isArray() || Arg->Ty->isPointer()) {
        CA.Ref = lowerLValue(Arg, Out); // Array name or forwarded reference.
      } else {
        Diags.error(Arg->Loc, "reference argument must be '&lvalue' or an "
                              "array");
        CA.Ref = tempLValue(0, Arg->Ty, Arg->Loc);
      }
    } else {
      CA.Value = lowerExpr(Arg, Out);
    }
    S->Args.push_back(std::move(CA));
  }
  S->RetTo = std::move(RetTo);
  Out.push_back(S);
}

const Expr *Lowering::lowerExpr(const astral::Expr *E,
                                std::vector<Stmt *> &Out) {
  switch (E->Kind) {
  case astral::ExprKind::IntLit:
    return constInt(E->IntValue, E->Ty, E->Loc);
  case astral::ExprKind::FloatLit: {
    Expr *F = P->newExpr(ExprKind::ConstFloat, E->Ty, E->Loc);
    F->FloatVal = E->FloatValue;
    return F;
  }
  case astral::ExprKind::DeclRef: {
    if (E->IsEnumConstant)
      return constInt(E->EnumValue, E->Ty, E->Loc);
    LValue Lv;
    Lv.Base = E->Var->UniqueId;
    Lv.Ty = E->Ty;
    Lv.Loc = E->Loc;
    return loadOf(Lv);
  }
  case astral::ExprKind::ArraySubscript:
  case astral::ExprKind::Member:
    return loadOf(lowerLValue(E, Out));
  case astral::ExprKind::Call: {
    const Type *RetTy = E->Ty;
    if (RetTy->isVoid()) {
      lowerCall(E, std::nullopt, Out);
      return constInt(0, Ast.Types.intTy(), E->Loc);
    }
    VarId T = newTemp(RetTy, "__ret");
    LValue TLv = tempLValue(T, RetTy, E->Loc);
    lowerCall(E, TLv, Out);
    return loadOf(TLv);
  }
  case astral::ExprKind::Unary: {
    switch (E->UOp) {
    case UnaryOp::Plus:
      return lowerExpr(E->Lhs, Out);
    case UnaryOp::Neg: {
      Expr *U = P->newExpr(ExprKind::Unary, E->Ty, E->Loc);
      U->UO = UnOp::Neg;
      U->A = lowerExpr(E->Lhs, Out);
      return U;
    }
    case UnaryOp::LogicalNot: {
      Expr *U = P->newExpr(ExprKind::Unary, E->Ty, E->Loc);
      U->UO = UnOp::LogicalNot;
      U->A = lowerCond(E->Lhs, Out);
      return U;
    }
    case UnaryOp::BitNot: {
      Expr *U = P->newExpr(ExprKind::Unary, E->Ty, E->Loc);
      U->UO = UnOp::BitNot;
      U->A = lowerExpr(E->Lhs, Out);
      return U;
    }
    case UnaryOp::Deref:
      return loadOf(lowerLValue(E, Out));
    case UnaryOp::AddrOf:
      Diags.error(E->Loc, "'&' is only allowed in call arguments "
                          "(call-by-reference subset)");
      return constInt(0, Ast.Types.intTy(), E->Loc);
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
    case UnaryOp::PostInc:
    case UnaryOp::PostDec:
      return lowerIncDec(E, Out);
    }
    return constInt(0, Ast.Types.intTy(), E->Loc);
  }
  case astral::ExprKind::Binary: {
    if (E->BOp == BinaryOp::Comma) {
      lowerDiscard(E->Lhs, Out);
      return lowerExpr(E->Rhs, Out);
    }
    if (E->BOp == BinaryOp::LogicalAnd || E->BOp == BinaryOp::LogicalOr) {
      // Short-circuit materialization in value position.
      bool IsAnd = E->BOp == BinaryOp::LogicalAnd;
      VarId T = newTemp(Ast.Types.intTy(), "__bool");
      LValue TLv = tempLValue(T, Ast.Types.intTy(), E->Loc);
      const Expr *CondA = lowerCond(E->Lhs, Out);

      std::vector<Stmt *> RhsSide;
      const Expr *CondB = lowerCond(E->Rhs, RhsSide);
      Stmt *InnerIf = P->newStmt(StmtKind::If, E->Loc);
      InnerIf->Cond = CondB;
      std::vector<Stmt *> T1, T0;
      emitAssign(T1, TLv, constInt(1, TLv.Ty, E->Loc), E->Loc);
      emitAssign(T0, TLv, constInt(0, TLv.Ty, E->Loc), E->Loc);
      InnerIf->Then = seq(std::move(T1), E->Loc);
      InnerIf->Else = seq(std::move(T0), E->Loc);
      RhsSide.push_back(InnerIf);

      Stmt *OuterIf = P->newStmt(StmtKind::If, E->Loc);
      OuterIf->Cond = CondA;
      std::vector<Stmt *> Short;
      emitAssign(Short, TLv, constInt(IsAnd ? 0 : 1, TLv.Ty, E->Loc), E->Loc);
      if (IsAnd) {
        OuterIf->Then = seq(std::move(RhsSide), E->Loc);
        OuterIf->Else = seq(std::move(Short), E->Loc);
      } else {
        OuterIf->Then = seq(std::move(Short), E->Loc);
        OuterIf->Else = seq(std::move(RhsSide), E->Loc);
      }
      Out.push_back(OuterIf);
      return loadOf(TLv);
    }
    Expr *Bin = P->newExpr(ExprKind::Binary, E->Ty, E->Loc);
    Bin->BO = lowerBinOp(E->BOp);
    Bin->A = lowerExpr(E->Lhs, Out);
    Bin->B = lowerExpr(E->Rhs, Out);
    return Bin;
  }
  case astral::ExprKind::Assign:
    return lowerAssign(E, Out);
  case astral::ExprKind::Cast: {
    if (E->Ty->isVoid()) {
      lowerDiscard(E->Lhs, Out);
      return constInt(0, Ast.Types.intTy(), E->Loc);
    }
    return castTo(lowerExpr(E->Lhs, Out), E->Ty);
  }
  case astral::ExprKind::Conditional: {
    VarId T = newTemp(E->Ty, "__sel");
    LValue TLv = tempLValue(T, E->Ty, E->Loc);
    const Expr *C = lowerCond(E->Lhs, Out);
    Stmt *If = P->newStmt(StmtKind::If, E->Loc);
    If->Cond = C;
    std::vector<Stmt *> TS, FS;
    emitAssign(TS, TLv, castTo(lowerExpr(E->Rhs, TS), E->Ty), E->Loc);
    emitAssign(FS, TLv, castTo(lowerExpr(E->Third, FS), E->Ty), E->Loc);
    If->Then = seq(std::move(TS), E->Loc);
    If->Else = seq(std::move(FS), E->Loc);
    Out.push_back(If);
    return loadOf(TLv);
  }
  }
  return constInt(0, Ast.Types.intTy(), E->Loc);
}

void Lowering::lowerDiscard(const astral::Expr *E, std::vector<Stmt *> &Out) {
  switch (E->Kind) {
  case astral::ExprKind::Assign:
    lowerAssign(E, Out);
    return;
  case astral::ExprKind::Call:
    if (E->Ty->isVoid()) {
      lowerCall(E, std::nullopt, Out);
    } else {
      VarId T = newTemp(E->Ty, "__ret");
      lowerCall(E, tempLValue(T, E->Ty, E->Loc), Out);
    }
    return;
  case astral::ExprKind::Unary:
    if (E->UOp == UnaryOp::PreInc || E->UOp == UnaryOp::PreDec ||
        E->UOp == UnaryOp::PostInc || E->UOp == UnaryOp::PostDec) {
      lowerIncDec(E, Out);
      return;
    }
    break;
  case astral::ExprKind::Binary:
    if (E->BOp == BinaryOp::Comma) {
      lowerDiscard(E->Lhs, Out);
      lowerDiscard(E->Rhs, Out);
      return;
    }
    break;
  default:
    break;
  }
  // Pure expression in statement position: materialize it into a discard
  // temporary so checking mode still inspects its operations.
  const Expr *V = lowerExpr(E, Out);
  if (V->isConst())
    return; // Nothing to check.
  VarId T = newTemp(E->Ty->isVoid() ? Ast.Types.intTy() : E->Ty, "__dis");
  emitAssign(Out, tempLValue(T, V->Ty, E->Loc), V, E->Loc);
}

const Expr *Lowering::lowerCond(const astral::Expr *E,
                                std::vector<Stmt *> &Out) {
  switch (E->Kind) {
  case astral::ExprKind::Binary:
    if (E->BOp == BinaryOp::LogicalAnd || E->BOp == BinaryOp::LogicalOr) {
      // Keep the boolean structure; the guard transfer decomposes it.
      // Side effects of the RHS would not be properly short-circuited here,
      // so detect and reject them (conditions in the family are pure).
      Expr *Bin = P->newExpr(ExprKind::Binary, Ast.Types.intTy(), E->Loc);
      Bin->BO = E->BOp == BinaryOp::LogicalAnd ? BinOp::LogicalAnd
                                               : BinOp::LogicalOr;
      Bin->A = lowerCond(E->Lhs, Out);
      size_t Before = Out.size();
      Bin->B = lowerCond(E->Rhs, Out);
      if (Out.size() != Before)
        Diags.error(E->Loc, "side effects in the right operand of '&&'/'||' "
                            "conditions are not supported");
      return Bin;
    }
    return lowerExpr(E, Out);
  case astral::ExprKind::Unary:
    if (E->UOp == UnaryOp::LogicalNot) {
      Expr *U = P->newExpr(ExprKind::Unary, Ast.Types.intTy(), E->Loc);
      U->UO = UnOp::LogicalNot;
      U->A = lowerCond(E->Lhs, Out);
      return U;
    }
    return lowerExpr(E, Out);
  default:
    return lowerExpr(E, Out);
  }
}

//===----------------------------------------------------------------------===//
// Aggregates and initialization
//===----------------------------------------------------------------------===//

void Lowering::lowerAggregateCopy(const LValue &Dst, const LValue &Src,
                                  const Type *Ty, SourceLocation Loc,
                                  std::vector<Stmt *> &Out) {
  if (Ty->isStruct()) {
    for (size_t I = 0; I < Ty->Fields.size(); ++I) {
      LValue D = Dst, S = Src;
      D.Path.push_back(Access{Access::Kind::Field, static_cast<int>(I),
                              nullptr});
      S.Path.push_back(Access{Access::Kind::Field, static_cast<int>(I),
                              nullptr});
      D.Ty = S.Ty = Ty->Fields[I].FieldType;
      lowerAggregateCopy(D, S, Ty->Fields[I].FieldType, Loc, Out);
    }
    return;
  }
  if (Ty->isArray()) {
    for (uint64_t I = 0; I < Ty->ArraySize; ++I) {
      LValue D = Dst, S = Src;
      const Expr *Idx = constInt(static_cast<int64_t>(I), Ast.Types.intTy(),
                                 Loc);
      D.Path.push_back(Access{Access::Kind::Index, -1, Idx});
      S.Path.push_back(Access{Access::Kind::Index, -1, Idx});
      D.Ty = S.Ty = Ty->Elem;
      lowerAggregateCopy(D, S, Ty->Elem, Loc, Out);
    }
    return;
  }
  LValue D = Dst;
  D.Ty = Ty;
  emitAssign(Out, D, loadOf(Src), Loc);
}

/// Recursively emits initializer assignments for the scalar leaves of \p Ty,
/// consuming expressions from a flattened initializer list; missing entries
/// become zeroes when \p ZeroDefault is set (C static initialization).
void Lowering::initLeaves(const LValue &Base, const Type *Ty,
                          const std::vector<astral::Expr *> &Flat,
                          size_t &Next, bool ZeroDefault, SourceLocation Loc,
                          std::vector<Stmt *> &Out) {
  if (Ty->isArray()) {
    for (uint64_t I = 0; I < Ty->ArraySize; ++I) {
      LValue Elem = Base;
      const Expr *Idx = constInt(static_cast<int64_t>(I), Ast.Types.intTy(),
                                 Loc);
      Elem.Path.push_back(Access{Access::Kind::Index, -1, Idx});
      Elem.Ty = Ty->Elem;
      initLeaves(Elem, Ty->Elem, Flat, Next, ZeroDefault, Loc, Out);
    }
    return;
  }
  if (Ty->isStruct()) {
    for (size_t I = 0; I < Ty->Fields.size(); ++I) {
      LValue F = Base;
      F.Path.push_back(Access{Access::Kind::Field, static_cast<int>(I),
                              nullptr});
      F.Ty = Ty->Fields[I].FieldType;
      initLeaves(F, Ty->Fields[I].FieldType, Flat, Next, ZeroDefault, Loc,
                 Out);
    }
    return;
  }
  const Expr *Val = nullptr;
  if (Next < Flat.size()) {
    Val = castTo(lowerExpr(Flat[Next], Out), Ty);
    ++Next;
  } else if (ZeroDefault) {
    if (Ty->isFloat()) {
      Expr *Z = P->newExpr(ExprKind::ConstFloat, Ty, Loc);
      Z->FloatVal = 0.0;
      Val = Z;
    } else {
      Val = constInt(0, Ty, Loc);
    }
  } else {
    return; // Locals without initializer stay unknown.
  }
  LValue Dst = Base;
  Dst.Ty = Ty;
  emitAssign(Out, Dst, Val, Loc);
}

void Lowering::lowerVarInit(VarId Target, VarDecl *V, std::vector<Stmt *> &Out,
                            bool ZeroDefault) {
  LValue Base = tempLValue(Target, V->Ty, V->Loc);

  if (V->Init) {
    const Expr *E = castTo(lowerExpr(V->Init, Out), V->Ty);
    emitAssign(Out, Base, E, V->Loc);
    return;
  }
  if (!V->HasInitList && !ZeroDefault)
    return; // Uninitialized local: unknown value until first write.
  size_t Next = 0;
  initLeaves(Base, V->Ty, V->InitList, Next, ZeroDefault, V->Loc, Out);
}

void Lowering::lowerLocalDecl(VarDecl *V, std::vector<Stmt *> &Out) {
  bool Persistent = V->Storage == StorageKind::StaticLocal;
  if (Persistent)
    return; // Static locals are initialized in GlobalInit.
  lowerVarInit(V->UniqueId, V, Out, /*ZeroDefault=*/V->HasInitList);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Lowering::lowerStmtInto(const astral::Stmt *S, std::vector<Stmt *> &Out) {
  if (!S)
    return;
  switch (S->Kind) {
  case astral::StmtKind::Expr:
    lowerDiscard(S->E, Out);
    return;
  case astral::StmtKind::Decl:
    lowerLocalDecl(S->DeclVar, Out);
    return;
  case astral::StmtKind::Compound:
    for (const astral::Stmt *Child : S->Body)
      lowerStmtInto(Child, Out);
    return;
  case astral::StmtKind::If: {
    Stmt *If = P->newStmt(StmtKind::If, S->Loc);
    If->Cond = lowerCond(S->E, Out);
    std::vector<Stmt *> TS, ES;
    lowerStmtInto(S->Then, TS);
    lowerStmtInto(S->Else, ES);
    If->Then = seq(std::move(TS), S->Loc);
    If->Else = S->Else ? seq(std::move(ES), S->Loc) : nullptr;
    Out.push_back(If);
    return;
  }
  case astral::StmtKind::While: {
    Stmt *W = P->newStmt(StmtKind::While, S->Loc);
    W->LoopId = P->NumLoops++;
    std::vector<Stmt *> Hoisted;
    W->Cond = lowerCond(S->E, Hoisted);
    if (!Hoisted.empty())
      Diags.error(S->Loc, "loop conditions with side effects are not "
                          "supported");
    std::vector<Stmt *> BS;
    lowerStmtInto(S->Then, BS);
    W->Body = seq(std::move(BS), S->Loc);
    Out.push_back(W);
    return;
  }
  case astral::StmtKind::DoWhile: {
    // do { B } while (c)  =>  B; while (c) { B }
    lowerStmtInto(S->Then, Out);
    Stmt *W = P->newStmt(StmtKind::While, S->Loc);
    W->LoopId = P->NumLoops++;
    std::vector<Stmt *> Hoisted;
    W->Cond = lowerCond(S->E, Hoisted);
    if (!Hoisted.empty())
      Diags.error(S->Loc, "loop conditions with side effects are not "
                          "supported");
    std::vector<Stmt *> BS;
    lowerStmtInto(S->Then, BS);
    W->Body = seq(std::move(BS), S->Loc);
    Out.push_back(W);
    return;
  }
  case astral::StmtKind::For: {
    if (S->ForInit)
      lowerStmtInto(S->ForInit, Out);
    Stmt *W = P->newStmt(StmtKind::While, S->Loc);
    W->LoopId = P->NumLoops++;
    if (S->E) {
      std::vector<Stmt *> Hoisted;
      W->Cond = lowerCond(S->E, Hoisted);
      if (!Hoisted.empty())
        Diags.error(S->Loc, "loop conditions with side effects are not "
                            "supported");
    } else {
      W->Cond = constInt(1, Ast.Types.intTy(), S->Loc);
    }
    std::vector<Stmt *> BS;
    lowerStmtInto(S->Then, BS);
    W->Body = seq(std::move(BS), S->Loc);
    if (S->ForStep) {
      std::vector<Stmt *> SS;
      lowerDiscard(S->ForStep, SS);
      W->Step = seq(std::move(SS), S->Loc);
    }
    Out.push_back(W);
    return;
  }
  case astral::StmtKind::Return: {
    if (S->E && CurRetVar != NoVar) {
      const Expr *V = lowerExpr(S->E, Out);
      emitAssign(Out, tempLValue(CurRetVar, V->Ty, S->Loc), V, S->Loc);
    }
    Stmt *R = P->newStmt(StmtKind::Return, S->Loc);
    Out.push_back(R);
    return;
  }
  case astral::StmtKind::Break:
    Out.push_back(P->newStmt(StmtKind::Break, S->Loc));
    return;
  case astral::StmtKind::Continue:
    Out.push_back(P->newStmt(StmtKind::Continue, S->Loc));
    return;
  case astral::StmtKind::Empty:
    return;
  }
}

Stmt *Lowering::lowerStmt(const astral::Stmt *S) {
  std::vector<Stmt *> Out;
  lowerStmtInto(S, Out);
  if (Out.empty())
    return P->newStmt(StmtKind::Nop, S ? S->Loc : SourceLocation());
  return seq(std::move(Out), S->Loc);
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Lowering::run(const std::string &EntryName) {
  P = std::make_unique<Program>();

  // Mirror AST variables: VarDecl::UniqueId == ir::VarId.
  for (VarDecl *V : Ast.TU.AllVars) {
    VarInfo VI;
    VI.Name = V->Name;
    VI.Ty = V->Ty;
    VI.IsVolatile = V->IsVolatile;
    VI.IsConst = V->IsConst;
    VI.IsPersistent = V->Storage == StorageKind::Global ||
                      V->Storage == StorageKind::StaticGlobal ||
                      V->Storage == StorageKind::StaticLocal;
    VI.IsParam = V->Storage == StorageKind::Param;
    VI.IsRef = VI.IsParam && V->Ty->isPointer();
    VI.Owner = V->Owner ? V->Owner->UniqueId : NoFunc;
    P->Vars.push_back(std::move(VI));
  }

  // Function table (including builtins, so FuncIds align with the AST).
  P->Functions.resize(Ast.TU.Functions.size());
  for (FuncDecl *F : Ast.TU.Functions) {
    Function &IF = P->Functions[F->UniqueId];
    IF.Name = F->Name;
    IF.Id = F->UniqueId;
    IF.RetTy = F->FnTy ? F->FnTy->Ret : Ast.Types.voidType();
    for (VarDecl *Param : F->Params)
      IF.Params.push_back(Param->UniqueId);
  }

  // Global / static initialization (zero-filled by default, Sect. 5.2 "the
  // abstract interpreter first creates the global and static variables").
  std::vector<Stmt *> InitStmts;
  CurFunc = NoFunc;
  for (VarDecl *V : Ast.TU.AllVars) {
    bool Persistent = V->Storage == StorageKind::Global ||
                      V->Storage == StorageKind::StaticGlobal ||
                      V->Storage == StorageKind::StaticLocal;
    if (!Persistent || V->IsVolatile)
      continue;
    lowerVarInit(V->UniqueId, V, InitStmts, /*ZeroDefault=*/true);
  }
  P->GlobalInit = seq(std::move(InitStmts), SourceLocation());
  if (P->GlobalInit->is(StmtKind::Seq) && P->GlobalInit->Stmts.empty())
    P->GlobalInit = nullptr;

  // Function bodies.
  for (FuncDecl *F : Ast.TU.Functions) {
    if (!F->BodyStmt)
      continue;
    Function &IF = P->Functions[F->UniqueId];
    CurFunc = F->UniqueId;
    CurRetVar = NoVar;
    if (!IF.RetTy->isVoid())
      CurRetVar = newTemp(IF.RetTy, "__retval");
    IF.RetVar = CurRetVar;
    IF.Body = lowerStmt(F->BodyStmt);
    CurFunc = NoFunc;
    CurRetVar = NoVar;
  }

  const Function *Entry = P->findFunction(EntryName);
  if (!Entry || !Entry->Body) {
    Diags.error(SourceLocation(),
                "entry function '" + EntryName + "' not found");
    return nullptr;
  }
  P->Entry = Entry->Id;

  if (Diags.hasErrors())
    return nullptr;
  return std::move(P);
}
