//===- ir/ConstFold.cpp - Constant folding & global census -----------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ir/ConstFold.h"

#include <cmath>
#include <map>
#include <optional>

using namespace astral;
using namespace astral::ir;

namespace {

class ConstFolder {
public:
  explicit ConstFolder(Program &P) : P(P) {}

  ConstFoldStats run();

private:
  /// Flat scalar offset of a fully-constant lvalue path, or nullopt.
  std::optional<int64_t> flatOffset(const LValue &Lv);
  static int64_t scalarCount(const Type *Ty);

  void collectConstTable();
  const Expr *foldExpr(const Expr *E);
  void foldLValue(LValue &Lv);
  void foldStmt(Stmt *S);

  void censusExpr(const Expr *E);
  void censusLValue(const LValue &Lv);
  void censusStmt(const Stmt *S);

  Program &P;
  ConstFoldStats Stats;
  /// (var, flat offset) -> folded constant initializer.
  std::map<std::pair<VarId, int64_t>, const Expr *> ConstTable;
};

} // namespace

int64_t ConstFolder::scalarCount(const Type *Ty) {
  switch (Ty->Kind) {
  case TypeKind::Array:
    return static_cast<int64_t>(Ty->ArraySize) * scalarCount(Ty->Elem);
  case TypeKind::Struct: {
    int64_t N = 0;
    for (const StructField &F : Ty->Fields)
      N += scalarCount(F.FieldType);
    return N;
  }
  default:
    return 1;
  }
}

std::optional<int64_t> ConstFolder::flatOffset(const LValue &Lv) {
  const Type *Ty = P.var(Lv.Base).Ty;
  int64_t Off = 0;
  for (const Access &A : Lv.Path) {
    switch (A.K) {
    case Access::Kind::Deref:
      return std::nullopt; // Reference parameters are not constant storage.
    case Access::Kind::Field: {
      if (!Ty->isStruct() || A.FieldIdx < 0 ||
          static_cast<size_t>(A.FieldIdx) >= Ty->Fields.size())
        return std::nullopt;
      for (int I = 0; I < A.FieldIdx; ++I)
        Off += scalarCount(Ty->Fields[I].FieldType);
      Ty = Ty->Fields[A.FieldIdx].FieldType;
      break;
    }
    case Access::Kind::Index: {
      if (!Ty->isArray() || !A.Index ||
          A.Index->Kind != ExprKind::ConstInt)
        return std::nullopt;
      int64_t Idx = A.Index->IntVal;
      if (Idx < 0 || static_cast<uint64_t>(Idx) >= Ty->ArraySize)
        return std::nullopt; // Out of bounds: leave for checking mode.
      Off += Idx * scalarCount(Ty->Elem);
      Ty = Ty->Elem;
      break;
    }
    }
  }
  return Off;
}

void ConstFolder::collectConstTable() {
  if (!P.GlobalInit)
    return;
  std::vector<Stmt *> Work{P.GlobalInit};
  while (!Work.empty()) {
    Stmt *S = Work.back();
    Work.pop_back();
    if (!S)
      continue;
    if (S->is(StmtKind::Seq)) {
      for (Stmt *C : S->Stmts)
        Work.push_back(C);
      continue;
    }
    if (!S->is(StmtKind::Assign) || !S->Rhs || !S->Rhs->isConst())
      continue;
    const VarInfo &VI = P.var(S->Lhs.Base);
    if (!VI.IsConst)
      continue;
    std::optional<int64_t> Off = flatOffset(S->Lhs);
    if (Off)
      ConstTable[{S->Lhs.Base, *Off}] = S->Rhs;
  }
}

const Expr *ConstFolder::foldExpr(const Expr *E) {
  if (!E)
    return nullptr;
  switch (E->Kind) {
  case ExprKind::ConstInt:
  case ExprKind::ConstFloat:
    return E;
  case ExprKind::Load: {
    // Fold indices first.
    LValue Lv = E->Lv;
    bool Changed = false;
    for (Access &A : Lv.Path) {
      if (A.K == Access::Kind::Index) {
        const Expr *Folded = foldExpr(A.Index);
        if (Folded != A.Index) {
          A.Index = Folded;
          Changed = true;
        }
      }
    }
    const VarInfo &VI = P.var(Lv.Base);
    if (VI.IsConst) {
      std::optional<int64_t> Off = flatOffset(Lv);
      if (Off) {
        auto It = ConstTable.find({Lv.Base, *Off});
        if (It != ConstTable.end()) {
          ++Stats.ConstLoadsReplaced;
          // Clone with the load's type (initializers were cast already).
          if (It->second->Ty == E->Ty)
            return It->second;
        }
      }
    }
    if (!Changed)
      return E;
    Expr *N = P.newExpr(ExprKind::Load, E->Ty, E->Loc);
    N->Lv = std::move(Lv);
    return N;
  }
  case ExprKind::Unary: {
    const Expr *A = foldExpr(E->A);
    if (A->is(ExprKind::ConstInt)) {
      int64_t V = A->IntVal;
      int64_t R = 0;
      switch (E->UO) {
      case UnOp::Neg:
        if (V == INT64_MIN)
          break;
        R = -V;
        goto FoldInt;
      case UnOp::LogicalNot:
        R = (V == 0);
        goto FoldInt;
      case UnOp::BitNot:
        R = ~V;
        goto FoldInt;
      }
      goto NoFoldUnary;
    FoldInt:
      if (E->Ty->isInt() && R >= E->Ty->intMin() && R <= E->Ty->intMax()) {
        ++Stats.FoldedExprs;
        Expr *N = P.newExpr(ExprKind::ConstInt, E->Ty, E->Loc);
        N->IntVal = R;
        return N;
      }
    }
    if (A->is(ExprKind::ConstFloat) && E->UO == UnOp::Neg) {
      ++Stats.FoldedExprs;
      Expr *N = P.newExpr(ExprKind::ConstFloat, E->Ty, E->Loc);
      N->FloatVal = -A->FloatVal;
      return N;
    }
  NoFoldUnary:
    if (A == E->A)
      return E;
    {
      Expr *N = P.newExpr(ExprKind::Unary, E->Ty, E->Loc);
      N->UO = E->UO;
      N->A = A;
      return N;
    }
  }
  case ExprKind::Binary: {
    const Expr *A = foldExpr(E->A);
    const Expr *B = foldExpr(E->B);
    if (A->is(ExprKind::ConstInt) && B->is(ExprKind::ConstInt) &&
        E->Ty->isInt()) {
      int64_t X = A->IntVal, Y = B->IntVal;
      bool Ok = true;
      int64_t R = 0;
      switch (E->BO) {
      case BinOp::Add: Ok = !__builtin_add_overflow(X, Y, &R); break;
      case BinOp::Sub: Ok = !__builtin_sub_overflow(X, Y, &R); break;
      case BinOp::Mul: Ok = !__builtin_mul_overflow(X, Y, &R); break;
      case BinOp::Div:
        Ok = Y != 0 && !(X == INT64_MIN && Y == -1);
        if (Ok)
          R = X / Y;
        break;
      case BinOp::Rem:
        Ok = Y != 0 && !(X == INT64_MIN && Y == -1);
        if (Ok)
          R = X % Y;
        break;
      case BinOp::Shl:
        Ok = Y >= 0 && Y < 63 && X >= 0 && (X >> (62 - Y)) == 0;
        if (Ok)
          R = X << Y;
        break;
      case BinOp::Shr:
        Ok = Y >= 0 && Y < 64;
        if (Ok)
          R = X >> Y;
        break;
      case BinOp::And: R = X & Y; break;
      case BinOp::Or: R = X | Y; break;
      case BinOp::Xor: R = X ^ Y; break;
      case BinOp::Lt: R = X < Y; break;
      case BinOp::Le: R = X <= Y; break;
      case BinOp::Gt: R = X > Y; break;
      case BinOp::Ge: R = X >= Y; break;
      case BinOp::Eq: R = X == Y; break;
      case BinOp::Ne: R = X != Y; break;
      case BinOp::LogicalAnd: R = (X != 0) && (Y != 0); break;
      case BinOp::LogicalOr: R = (X != 0) || (Y != 0); break;
      }
      if (Ok && R >= E->Ty->intMin() && R <= E->Ty->intMax()) {
        ++Stats.FoldedExprs;
        Expr *N = P.newExpr(ExprKind::ConstInt, E->Ty, E->Loc);
        N->IntVal = R;
        return N;
      }
    }
    if (A->is(ExprKind::ConstFloat) && B->is(ExprKind::ConstFloat) &&
        E->Ty->isFloat()) {
      double X = A->FloatVal, Y = B->FloatVal;
      double R = 0.0;
      bool Ok = true;
      switch (E->BO) {
      case BinOp::Add: R = X + Y; break;
      case BinOp::Sub: R = X - Y; break;
      case BinOp::Mul: R = X * Y; break;
      case BinOp::Div:
        Ok = Y != 0.0;
        if (Ok)
          R = X / Y;
        break;
      default: Ok = false; break;
      }
      if (!E->Ty->IsDouble)
        R = static_cast<float>(R);
      if (Ok && std::isfinite(R)) {
        ++Stats.FoldedExprs;
        Expr *N = P.newExpr(ExprKind::ConstFloat, E->Ty, E->Loc);
        N->FloatVal = R;
        return N;
      }
    }
    if (A == E->A && B == E->B)
      return E;
    Expr *N = P.newExpr(ExprKind::Binary, E->Ty, E->Loc);
    N->BO = E->BO;
    N->A = A;
    N->B = B;
    return N;
  }
  case ExprKind::Cast: {
    const Expr *A = foldExpr(E->A);
    if (A->is(ExprKind::ConstInt)) {
      if (E->Ty->isInt() && A->IntVal >= E->Ty->intMin() &&
          A->IntVal <= E->Ty->intMax()) {
        ++Stats.FoldedExprs;
        Expr *N = P.newExpr(ExprKind::ConstInt, E->Ty, E->Loc);
        N->IntVal = A->IntVal;
        return N;
      }
      if (E->Ty->isFloat()) {
        ++Stats.FoldedExprs;
        Expr *N = P.newExpr(ExprKind::ConstFloat, E->Ty, E->Loc);
        double V = static_cast<double>(A->IntVal);
        N->FloatVal = E->Ty->IsDouble ? V : static_cast<float>(V);
        return N;
      }
    }
    if (A->is(ExprKind::ConstFloat)) {
      if (E->Ty->isFloat()) {
        ++Stats.FoldedExprs;
        Expr *N = P.newExpr(ExprKind::ConstFloat, E->Ty, E->Loc);
        N->FloatVal = E->Ty->IsDouble ? A->FloatVal
                                      : static_cast<float>(A->FloatVal);
        if (!E->Ty->IsDouble && !std::isfinite(N->FloatVal))
          break; // float overflow: keep the cast for checking mode.
        return N;
      }
      if (E->Ty->isInt()) {
        double V = std::trunc(A->FloatVal);
        if (V >= static_cast<double>(E->Ty->intMin()) &&
            V <= static_cast<double>(E->Ty->intMax())) {
          ++Stats.FoldedExprs;
          Expr *N = P.newExpr(ExprKind::ConstInt, E->Ty, E->Loc);
          N->IntVal = static_cast<int64_t>(V);
          return N;
        }
      }
    }
    break;
  }
  }
  if (E->Kind == ExprKind::Cast && E->A) {
    const Expr *A = foldExpr(E->A);
    if (A == E->A)
      return E;
    Expr *N = P.newExpr(ExprKind::Cast, E->Ty, E->Loc);
    N->A = A;
    return N;
  }
  return E;
}

void ConstFolder::foldLValue(LValue &Lv) {
  for (Access &A : Lv.Path)
    if (A.K == Access::Kind::Index)
      A.Index = foldExpr(A.Index);
}

void ConstFolder::foldStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Assign:
    foldLValue(S->Lhs);
    if (S->Rhs)
      S->Rhs = foldExpr(S->Rhs);
    return;
  case StmtKind::If:
    S->Cond = foldExpr(S->Cond);
    foldStmt(S->Then);
    foldStmt(S->Else);
    return;
  case StmtKind::While:
    S->Cond = foldExpr(S->Cond);
    foldStmt(S->Body);
    foldStmt(S->Step);
    return;
  case StmtKind::Seq:
    for (Stmt *C : S->Stmts)
      foldStmt(C);
    return;
  case StmtKind::Call:
    for (CallArg &A : S->Args) {
      if (A.IsRef)
        foldLValue(A.Ref);
      else
        A.Value = foldExpr(A.Value);
    }
    if (S->RetTo)
      foldLValue(*S->RetTo);
    return;
  case StmtKind::Assume:
  case StmtKind::Assert:
    S->Cond = foldExpr(S->Cond);
    return;
  case StmtKind::Return:
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Wait:
  case StmtKind::Nop:
    return;
  }
}

void ConstFolder::censusExpr(const Expr *E) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::Load:
    censusLValue(E->Lv);
    return;
  case ExprKind::Unary:
  case ExprKind::Cast:
    censusExpr(E->A);
    return;
  case ExprKind::Binary:
    censusExpr(E->A);
    censusExpr(E->B);
    return;
  default:
    return;
  }
}

void ConstFolder::censusLValue(const LValue &Lv) {
  P.Vars[Lv.Base].IsUsed = true;
  for (const Access &A : Lv.Path)
    if (A.K == Access::Kind::Index)
      censusExpr(A.Index);
}

void ConstFolder::censusStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Assign:
    censusLValue(S->Lhs);
    censusExpr(S->Rhs);
    return;
  case StmtKind::If:
    censusExpr(S->Cond);
    censusStmt(S->Then);
    censusStmt(S->Else);
    return;
  case StmtKind::While:
    censusExpr(S->Cond);
    censusStmt(S->Body);
    censusStmt(S->Step);
    return;
  case StmtKind::Seq:
    for (const Stmt *C : S->Stmts)
      censusStmt(C);
    return;
  case StmtKind::Call:
    for (const CallArg &A : S->Args) {
      if (A.IsRef)
        censusLValue(A.Ref);
      else
        censusExpr(A.Value);
    }
    if (S->RetTo)
      censusLValue(*S->RetTo);
    return;
  case StmtKind::Assume:
  case StmtKind::Assert:
    censusExpr(S->Cond);
    return;
  default:
    return;
  }
}

ConstFoldStats ConstFolder::run() {
  collectConstTable();

  for (Function &F : P.Functions)
    foldStmt(F.Body);
  foldStmt(P.GlobalInit);

  // Usage census over function bodies (not the init code): a global that is
  // only initialized but never read or written by the program proper is
  // unused and its cells (and init assignments) are dropped.
  for (VarInfo &VI : P.Vars)
    VI.IsUsed = false;
  for (const Function &F : P.Functions) {
    censusStmt(F.Body);
    // Parameters and return holders of analyzed functions are always live.
    for (VarId V : F.Params)
      P.Vars[V].IsUsed = true;
    if (F.RetVar != NoVar)
      P.Vars[F.RetVar].IsUsed = true;
  }

  // Drop init assignments whose target is unused.
  if (P.GlobalInit) {
    std::vector<Stmt *> Work{P.GlobalInit};
    while (!Work.empty()) {
      Stmt *S = Work.back();
      Work.pop_back();
      if (!S || !S->is(StmtKind::Seq))
        continue;
      std::vector<Stmt *> Kept;
      for (Stmt *C : S->Stmts) {
        if (C->is(StmtKind::Assign) && !P.var(C->Lhs.Base).IsUsed) {
          ++Stats.InitAssignsDropped;
          continue;
        }
        if (C->is(StmtKind::Seq))
          Work.push_back(C);
        Kept.push_back(C);
      }
      S->Stmts = std::move(Kept);
    }
    // Index expressions of surviving init assignments may still read vars.
    censusStmt(P.GlobalInit);
  }

  for (const VarInfo &VI : P.Vars)
    if (!VI.IsUsed && VI.IsPersistent)
      ++Stats.GlobalsDeleted;
  return Stats;
}

ConstFoldStats ir::foldConstants(Program &P) {
  ConstFolder F(P);
  return F.run();
}
