//===- ir/Ir.h - Intermediate representation ---------------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analyzer's intermediate representation: "a simplified version of the
/// abstract syntax tree with all types explicit and variables given unique
/// identifiers" (Sect. 5.1). Statements form a tree (no CFG) because the
/// abstract interpreter executes compositionally, by induction on the syntax
/// (Sect. 5.2). Side effects have been hoisted out of expressions; function
/// calls, the synchronous `wait`, and assume/assert directives are
/// statements.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_IR_IR_H
#define ASTRAL_IR_IR_H

#include "lang/Type.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace astral {
namespace ir {

using VarId = uint32_t;
using FuncId = uint32_t;
inline constexpr VarId NoVar = std::numeric_limits<VarId>::max();
inline constexpr FuncId NoFunc = std::numeric_limits<FuncId>::max();

/// Static information about one program variable.
struct VarInfo {
  std::string Name;
  const Type *Ty = nullptr;
  bool IsVolatile = false;
  bool IsConst = false;
  /// Globals and statics persist across the synchronous loop; locals and
  /// temporaries are per-activation.
  bool IsPersistent = false;
  bool IsParam = false;
  /// Pointer parameter: bound to a caller lvalue at each (inlined) call.
  bool IsRef = false;
  /// Compiler-introduced temporary.
  bool IsTemp = false;
  FuncId Owner = NoFunc;
  /// Result of the frontend usage census; unused globals are not given cells
  /// (Sect. 5.1 "unused global variables are then deleted").
  bool IsUsed = true;
};

class Expr;

/// One step of an lvalue path.
struct Access {
  enum class Kind : uint8_t { Field, Index, Deref } K;
  int FieldIdx = -1;        ///< Field.
  const Expr *Index = nullptr; ///< Index (null for Field/Deref).
};

/// A typed reference to a storage location: base variable plus a path of
/// field selections, array subscripts and (for by-reference parameters) one
/// leading dereference.
struct LValue {
  VarId Base = NoVar;
  std::vector<Access> Path;
  const Type *Ty = nullptr; ///< Type of the designated location.
  SourceLocation Loc;
};

enum class ExprKind : uint8_t { ConstInt, ConstFloat, Load, Unary, Binary,
                                Cast };
enum class UnOp : uint8_t { Neg, LogicalNot, BitNot };
enum class BinOp : uint8_t {
  Add, Sub, Mul, Div, Rem,
  Shl, Shr, And, Or, Xor,
  Lt, Le, Gt, Ge, Eq, Ne,
  LogicalAnd, LogicalOr,
};

inline bool isComparison(BinOp Op) {
  switch (Op) {
  case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
  case BinOp::Eq: case BinOp::Ne:
    return true;
  default:
    return false;
  }
}

/// A side-effect-free typed expression.
class Expr {
public:
  ExprKind Kind;
  const Type *Ty = nullptr;
  SourceLocation Loc;
  /// Unique program point; alarms attach here.
  uint32_t Point = 0;

  int64_t IntVal = 0;
  double FloatVal = 0.0;
  LValue Lv;       ///< Load.
  UnOp UO = UnOp::Neg;
  BinOp BO = BinOp::Add;
  const Expr *A = nullptr;
  const Expr *B = nullptr;

  bool is(ExprKind K) const { return Kind == K; }
  bool isConst() const {
    return Kind == ExprKind::ConstInt || Kind == ExprKind::ConstFloat;
  }
};

enum class StmtKind : uint8_t {
  Assign,
  If,
  While,
  Seq,
  Call,
  Return,
  Break,
  Continue,
  Wait,    ///< Synchronous clock tick (end of the periodic loop body).
  Assume,  ///< __astral_assume(c): refine by c.
  Assert,  ///< __astral_assert(c): alarm when c may fail, then refine by c.
  Nop,
};

struct CallArg {
  bool IsRef = false;
  const Expr *Value = nullptr; ///< Value argument.
  LValue Ref;                  ///< Reference argument.
};

class Stmt {
public:
  StmtKind Kind;
  SourceLocation Loc;
  uint32_t Point = 0;

  // Assign.
  LValue Lhs;
  const Expr *Rhs = nullptr;

  // If / While / Assume / Assert.
  const Expr *Cond = nullptr;
  Stmt *Then = nullptr;
  Stmt *Else = nullptr;

  // While.
  Stmt *Body = nullptr;
  Stmt *Step = nullptr; ///< For-loop step, re-run after `continue`.
  uint32_t LoopId = 0;

  // Seq.
  std::vector<Stmt *> Stmts;

  // Call.
  FuncId Callee = NoFunc;
  std::vector<CallArg> Args;
  std::optional<LValue> RetTo;

  // Return.
  const Expr *RetVal = nullptr;

  bool is(StmtKind K) const { return Kind == K; }
};

struct Function {
  std::string Name;
  FuncId Id = NoFunc;
  const Type *RetTy = nullptr;
  std::vector<VarId> Params;
  Stmt *Body = nullptr;
  /// Synthesized holder for the return value (NoVar for void).
  VarId RetVar = NoVar;
};

/// A whole analyzable program.
struct Program {
  std::vector<VarInfo> Vars;
  std::vector<Function> Functions;
  FuncId Entry = NoFunc;
  /// Initialization of globals/statics, run once before the entry function.
  Stmt *GlobalInit = nullptr;
  uint32_t NumPoints = 0;
  uint32_t NumLoops = 0;

  const VarInfo &var(VarId V) const { return Vars[V]; }
  const Function *function(FuncId F) const {
    return F < Functions.size() ? &Functions[F] : nullptr;
  }
  const Function *findFunction(const std::string &Name) const {
    for (const Function &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

  /// Node arena.
  Expr *newExpr(ExprKind K, const Type *Ty, SourceLocation Loc) {
    ExprArena.emplace_back();
    Expr *E = &ExprArena.back();
    E->Kind = K;
    E->Ty = Ty;
    E->Loc = Loc;
    E->Point = NumPoints++;
    return E;
  }
  Stmt *newStmt(StmtKind K, SourceLocation Loc) {
    StmtArena.emplace_back();
    Stmt *S = &StmtArena.back();
    S->Kind = K;
    S->Loc = Loc;
    S->Point = NumPoints++;
    return S;
  }

  /// Pretty-printer for debugging and golden tests.
  std::string dump() const;

private:
  std::deque<Expr> ExprArena;
  std::deque<Stmt> StmtArena;
};

/// Renders an expression (for invariant dumps and tests).
std::string exprToString(const Program &P, const Expr *E);
/// Renders an lvalue.
std::string lvalueToString(const Program &P, const LValue &Lv);
/// Renders a statement tree with indentation.
std::string stmtToString(const Program &P, const Stmt *S, int Indent = 0);

} // namespace ir
} // namespace astral

#endif // ASTRAL_IR_IR_H
