//===- ir/Ir.cpp - Intermediate representation -----------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "ir/Ir.h"

#include <sstream>

using namespace astral;
using namespace astral::ir;

static const char *unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg: return "-";
  case UnOp::LogicalNot: return "!";
  case UnOp::BitNot: return "~";
  }
  return "?";
}

static const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add: return "+";
  case BinOp::Sub: return "-";
  case BinOp::Mul: return "*";
  case BinOp::Div: return "/";
  case BinOp::Rem: return "%";
  case BinOp::Shl: return "<<";
  case BinOp::Shr: return ">>";
  case BinOp::And: return "&";
  case BinOp::Or: return "|";
  case BinOp::Xor: return "^";
  case BinOp::Lt: return "<";
  case BinOp::Le: return "<=";
  case BinOp::Gt: return ">";
  case BinOp::Ge: return ">=";
  case BinOp::Eq: return "==";
  case BinOp::Ne: return "!=";
  case BinOp::LogicalAnd: return "&&";
  case BinOp::LogicalOr: return "||";
  }
  return "?";
}

std::string ir::lvalueToString(const Program &P, const LValue &Lv) {
  std::string Out = Lv.Base < P.Vars.size() ? P.Vars[Lv.Base].Name
                                            : "<badvar>";
  for (const Access &A : Lv.Path) {
    switch (A.K) {
    case Access::Kind::Field:
      Out += ".f" + std::to_string(A.FieldIdx);
      break;
    case Access::Kind::Index:
      Out += "[" + exprToString(P, A.Index) + "]";
      break;
    case Access::Kind::Deref:
      Out = "*" + Out;
      break;
    }
  }
  return Out;
}

std::string ir::exprToString(const Program &P, const Expr *E) {
  if (!E)
    return "<null>";
  switch (E->Kind) {
  case ExprKind::ConstInt:
    return std::to_string(E->IntVal);
  case ExprKind::ConstFloat: {
    std::ostringstream OS;
    OS.precision(17);
    OS << E->FloatVal;
    return OS.str();
  }
  case ExprKind::Load:
    return lvalueToString(P, E->Lv);
  case ExprKind::Unary:
    return std::string(unOpName(E->UO)) + "(" + exprToString(P, E->A) + ")";
  case ExprKind::Binary:
    return "(" + exprToString(P, E->A) + " " + binOpName(E->BO) + " " +
           exprToString(P, E->B) + ")";
  case ExprKind::Cast:
    return "(" + E->Ty->toString() + ")(" + exprToString(P, E->A) + ")";
  }
  return "?";
}

std::string ir::stmtToString(const Program &P, const Stmt *S, int Indent) {
  std::string Pad(static_cast<size_t>(Indent) * 2, ' ');
  if (!S)
    return Pad + "<null>\n";
  switch (S->Kind) {
  case StmtKind::Assign:
    return Pad + lvalueToString(P, S->Lhs) + " := " +
           exprToString(P, S->Rhs) + ";\n";
  case StmtKind::If: {
    std::string Out =
        Pad + "if (" + exprToString(P, S->Cond) + ") {\n";
    Out += stmtToString(P, S->Then, Indent + 1);
    if (S->Else) {
      Out += Pad + "} else {\n";
      Out += stmtToString(P, S->Else, Indent + 1);
    }
    Out += Pad + "}\n";
    return Out;
  }
  case StmtKind::While: {
    std::string Out = Pad + "while#" + std::to_string(S->LoopId) + " (" +
                      exprToString(P, S->Cond) + ") {\n";
    Out += stmtToString(P, S->Body, Indent + 1);
    if (S->Step) {
      Out += Pad + "  step:\n";
      Out += stmtToString(P, S->Step, Indent + 1);
    }
    Out += Pad + "}\n";
    return Out;
  }
  case StmtKind::Seq: {
    std::string Out;
    for (const Stmt *Child : S->Stmts)
      Out += stmtToString(P, Child, Indent);
    return Out;
  }
  case StmtKind::Call: {
    std::string Out = Pad;
    if (S->RetTo)
      Out += lvalueToString(P, *S->RetTo) + " := ";
    const Function *F = P.function(S->Callee);
    Out += (F ? F->Name : "<badfn>") + "(";
    for (size_t I = 0; I < S->Args.size(); ++I) {
      if (I)
        Out += ", ";
      if (S->Args[I].IsRef)
        Out += "&" + lvalueToString(P, S->Args[I].Ref);
      else
        Out += exprToString(P, S->Args[I].Value);
    }
    return Out + ");\n";
  }
  case StmtKind::Return:
    return Pad + "return" +
           (S->RetVal ? " " + exprToString(P, S->RetVal) : "") + ";\n";
  case StmtKind::Break:
    return Pad + "break;\n";
  case StmtKind::Continue:
    return Pad + "continue;\n";
  case StmtKind::Wait:
    return Pad + "wait;\n";
  case StmtKind::Assume:
    return Pad + "assume(" + exprToString(P, S->Cond) + ");\n";
  case StmtKind::Assert:
    return Pad + "assert(" + exprToString(P, S->Cond) + ");\n";
  case StmtKind::Nop:
    return Pad + "nop;\n";
  }
  return Pad + "?\n";
}

std::string Program::dump() const {
  std::string Out;
  Out += "program: " + std::to_string(Vars.size()) + " vars, " +
         std::to_string(Functions.size()) + " functions\n";
  if (GlobalInit) {
    Out += "init:\n";
    Out += stmtToString(*this, GlobalInit, 1);
  }
  for (const Function &F : Functions) {
    if (!F.Body)
      continue;
    Out += F.Name + "(";
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Vars[F.Params[I]].Name;
    }
    Out += "):\n";
    Out += stmtToString(*this, F.Body, 1);
  }
  return Out;
}
