//===- domains/RelationalDomain.h - Uniform relational-domain API -*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform signature every relational abstract domain implements
/// (Sect. 6: the analyzer is an *extensible reduced product* — each domain
/// implements one common interface and communicates refinements to its peers
/// through partial reductions, so new domains can be added without touching
/// the iterator).
///
/// Three pieces:
///  - DomainKind / DomainSet: the identity of each abstract domain and the
///    enabled subset ("--domains=interval,clocked,octagon,tree,ellipsoid").
///  - ReductionChannel: per-cell interval facts a domain publishes
///    (refineOut) or consumes (refineIn), so domains exchange reductions
///    without knowing each other's types — the paper's partial-reduction
///    mechanism between the interval environment and the relational packs.
///  - DomainState: one immutable abstract value of one domain for one pack,
///    with the common lattice (join/widen/narrow/leq/equal) and transfer
///    (assignCell/guard/forget) signature. Binary operations return null to
///    mean "unchanged — keep the receiver", which preserves the
///    physical-equality sharing short-cuts of Sect. 6.1.2.
///
/// The per-domain factories (pack enumeration, topFor) live in the
/// analyzer's DomainRegistry; this header is the domain-side contract only.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_RELATIONALDOMAIN_H
#define ASTRAL_DOMAINS_RELATIONALDOMAIN_H

#include "domains/LinearForm.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace astral {

class Thresholds;

namespace support {
class Hash128;
} // namespace support

namespace ir {
class Expr;
enum class BinOp : uint8_t;
} // namespace ir

//===----------------------------------------------------------------------===//
// Domain identity and selection
//===----------------------------------------------------------------------===//

/// Every abstract domain of Sect. 6.2. Interval and Clocked are the per-cell
/// base domains (their reduced product is the cell abstraction of 6.1);
/// Octagon, DecisionTree and Ellipsoid are the pack-based relational domains
/// registered with the DomainRegistry.
enum class DomainKind : uint8_t {
  Interval,     ///< Base interval domain (6.2.1) — always enabled.
  Clocked,      ///< Clocked domain x +/- clock (6.2.1).
  Octagon,      ///< Octagon packs (6.2.2).
  DecisionTree, ///< Boolean decision trees (6.2.4).
  Ellipsoid,    ///< Filter ellipsoids (6.2.3).
};

inline constexpr size_t NumDomainKinds = 5;

/// Canonical name of a domain kind ("interval", "clocked", "octagon",
/// "tree", "ellipsoid").
const char *domainKindName(DomainKind K);

/// The set of enabled abstract domains — the refinement-order experiments of
/// Sect. 9.2 ablate these one by one. The interval domain is the base the
/// reduced product collapses onto and can never be disabled.
class DomainSet {
public:
  /// Everything on (the paper's full configuration).
  static DomainSet all() {
    DomainSet S;
    S.Mask = 0x1F;
    return S;
  }
  /// Plain interval analysis (the starting-point analyzer of Sect. 2).
  static DomainSet intervalOnly() { return DomainSet(); }

  bool has(DomainKind K) const {
    return (Mask & bit(K)) != 0 || K == DomainKind::Interval;
  }
  DomainSet &enable(DomainKind K, bool On = true) {
    if (On)
      Mask |= bit(K);
    else if (K != DomainKind::Interval)
      Mask &= static_cast<uint8_t>(~bit(K));
    return *this;
  }

  bool operator==(const DomainSet &O) const { return Mask == O.Mask; }

  /// Parses a comma-separated domain list ("interval,octagon,tree"). Accepts
  /// the plural/alternate spellings used by the legacy flags ("octagons",
  /// "trees", "ellipsoids", "clock"). Returns nullopt and fills \p Err on an
  /// unknown name or an empty list.
  static std::optional<DomainSet> parse(const std::string &List,
                                        std::string &Err);
  /// Canonical comma-separated rendering.
  std::string toString() const;

private:
  static uint8_t bit(DomainKind K) {
    return static_cast<uint8_t>(1u << static_cast<unsigned>(K));
  }
  uint8_t Mask = bit(DomainKind::Interval);
};

//===----------------------------------------------------------------------===//
// Reduction channels
//===----------------------------------------------------------------------===//

/// Per-cell interval facts exchanged between domains during reduction. A
/// domain publishes the interval consequences of its own constraints
/// (refineOut) — e.g. an octagon publishes the unary bounds implied by its
/// closed DBM — and the iterator meets them into the cell environment, from
/// where every other domain can pick them up (refineIn). Facts are applied
/// in publication order. markBottom() signals that the publishing domain
/// proved the state unreachable. Domains may also attach statistics notes so
/// counting stays inside the domain implementation.
class ReductionChannel {
public:
  void publish(CellId C, const Interval &I) { Facts.push_back({C, I}); }
  void markBottom() { Bottom = true; }
  bool isBottom() const { return Bottom; }
  bool empty() const { return Facts.empty() && !Bottom; }

  /// The fact published for \p C, or null. Linear scan: channels are small
  /// (one pack's worth of cells).
  const Interval *fact(CellId C) const {
    for (const auto &[Cell, I] : Facts)
      if (Cell == C)
        return &I;
    return nullptr;
  }

  template <typename FnT> void forEachFact(FnT &&F) const {
    for (const auto &[C, I] : Facts)
      F(C, I);
  }

  void noteStat(const char *Key, uint64_t N = 1) {
    StatNotes.push_back({Key, N});
  }
  template <typename FnT> void forEachStat(FnT &&F) const {
    for (const auto &[Key, N] : StatNotes)
      F(Key, N);
  }

private:
  std::vector<std::pair<CellId, Interval>> Facts;
  std::vector<std::pair<const char *, uint64_t>> StatNotes;
  bool Bottom = false;
};

//===----------------------------------------------------------------------===//
// Evaluation context
//===----------------------------------------------------------------------===//

/// Optional cell-interval overlay used for per-leaf decision-tree
/// evaluation: returns a replacement interval for a cell, or null.
using CellOverlay = std::function<const Interval *(CellId)>;

/// What a domain's transfer functions may ask of the surrounding analysis:
/// the current interval of any cell, silent expression evaluation (under an
/// optional overlay), linearization (Sect. 6.3), and lvalue resolution. The
/// iterator's Transfer implements this; domains stay ignorant of the
/// environment representation and of each other.
class DomainEvalContext {
public:
  virtual ~DomainEvalContext() = default;
  /// Current interval abstraction of \p C.
  virtual Interval cellInterval(CellId C) const = 0;
  /// Silent (non-alarming) abstract evaluation of \p E.
  virtual Interval eval(const ir::Expr *E,
                        const CellOverlay *Overlay = nullptr) const = 0;
  /// Interval linear form of \p E (LinearForm::invalid() when not
  /// linearizable).
  virtual LinearForm linearize(const ir::Expr *E) const = 0;
  /// The single cell a Load expression strongly designates, or NoCellId.
  virtual CellId strongLoadCell(const ir::Expr *E) const = 0;
};

inline constexpr CellId NoCellId = UINT32_MAX;

//===----------------------------------------------------------------------===//
// Transfer-function requests
//===----------------------------------------------------------------------===//

/// A strong single-cell assignment Target := Rhs, pre-digested by the
/// iterator: \p Form is the linearized right-hand side (may be invalid), \p
/// Value its interval, \p Rhs the expression (null for interval-only
/// assignments such as parameter passing).
struct RelAssign {
  CellId Target = NoCellId;
  const LinearForm *Form = nullptr;
  Interval Value;
  const ir::Expr *Rhs = nullptr;
};

/// An atomic comparison guard A op B (op already negation-normalized). The
/// domain's planGuard fills the lazy fields it needs — the linearized
/// difference forms for octagons, the strongly-resolved load cells for
/// decision trees — so each domain prepares exactly once per guard, after
/// the reductions of the domains before it in the registry order.
struct RelGuard {
  const ir::Expr *A = nullptr;
  const ir::Expr *B = nullptr;
  ir::BinOp Op{};
  bool IsInt = false;
  // Filled by RelationalDomain::planGuard:
  LinearForm Diff = LinearForm::invalid();    ///< A - B (octagons).
  LinearForm NegDiff = LinearForm::invalid(); ///< B - A (octagons).
  CellId CellA = NoCellId, CellB = NoCellId;  ///< Strong load cells (trees).
};

//===----------------------------------------------------------------------===//
// DomainState
//===----------------------------------------------------------------------===//

/// One immutable abstract value of one relational domain for one pack.
/// Instances are shared across environments (copy-on-write behind
/// shared_ptr<const>); every operation returns a fresh state, or null for
/// "unchanged — keep the receiver" (binary lattice operations and transfer
/// functions alike), which the persistent-map sharing short-cuts rely on.
///
/// Binary operations are only ever applied to two states of the same domain
/// and the same pack; implementations downcast the argument unchecked.
class DomainState {
public:
  using Ptr = std::shared_ptr<const DomainState>;

  virtual ~DomainState();

  virtual DomainKind kind() const = 0;
  virtual bool isBottom() const = 0;

  /// The bottom (unreachable) state of the same pack shape.
  virtual Ptr bottomLike() const = 0;

  // -- Lattice -----------------------------------------------------------
  virtual bool leq(const DomainState &O) const = 0;
  virtual bool equal(const DomainState &O) const = 0;
  virtual Ptr join(const DomainState &O) const = 0;
  virtual Ptr widen(const DomainState &O, const Thresholds &T,
                    bool WithThresholds) const = 0;
  virtual Ptr narrow(const DomainState &O) const = 0;

  // -- Transfer ----------------------------------------------------------
  /// Strong single-cell assignment; the target is guaranteed to belong to
  /// this state's pack. Interval consequences go out through \p Out.
  virtual Ptr assignCell(const RelAssign &A, const DomainEvalContext &Ctx,
                         ReductionChannel &Out) const = 0;
  /// Invalidation for a weak store to \p C (new value bounded by \p V).
  virtual Ptr forget(CellId C, const Interval &V,
                     const DomainEvalContext &Ctx) const = 0;
  /// Refinement by an atomic comparison (fields prepared by planGuard).
  /// Default: no refinement.
  virtual Ptr guard(const RelGuard &G, const DomainEvalContext &Ctx,
                    ReductionChannel &Out) const;
  /// Refinement by a bare boolean test on cell \p C. Default: none.
  virtual Ptr guardBool(CellId C, bool Positive,
                        ReductionChannel &Out) const;

  // -- Reduction ---------------------------------------------------------
  /// Publishes the per-cell interval facts implied by this state (the
  /// octagon -> interval and tree-leaf -> interval reductions).
  virtual void refineOut(ReductionChannel &Out) const = 0;
  /// Tightens this state from peer-published interval facts. Default: no
  /// refinement.
  virtual Ptr refineIn(const ReductionChannel &In) const;
  /// The paper's pre-union reduction ("before computing the union between
  /// two abstract elements"): refine from a sibling state of the same pack
  /// plus the local interval information. Default: none.
  virtual Ptr preJoinWith(const DomainState &Other,
                          const DomainEvalContext &Ctx) const;

  // -- Introspection -----------------------------------------------------
  /// True when the state carries information the plain interval environment
  /// does not (pack usefulness, Sect. 7.2.2).
  virtual bool hasRelationalInfo() const = 0;
  virtual std::string toString() const = 0;

  /// Feeds an exact, representation-sensitive digest of this state into
  /// \p H — the call-summary memo's content key. Contract: for two states
  /// of the same domain and pack, an equal digest stream implies a
  /// bitwise-identical representation, so re-executing from either yields
  /// identical results. Representation differences that are semantically
  /// equal (a closed vs. unclosed octagon DBM) must still split the stream:
  /// that only costs a spurious memo miss, never a wrong hit.
  virtual void repHash(support::Hash128 &H) const = 0;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_RELATIONALDOMAIN_H
