//===- domains/DecisionTree.h - Boolean decision trees -----------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision-tree abstract domain of Sect. 6.2.4: a relational domain
/// relating boolean variables to numerical ones, "a decision tree with leaf
/// an arithmetic abstract domain" (intervals suffice, per the paper's
/// footnote). Booleans are ordered by cell id (BDD-style, cf. Bryant) and
/// packs are limited to a few booleans (7.2.3 found three to be the sweet
/// spot), so the tree is stored densely: one leaf per boolean valuation,
/// each leaf holding one interval per pack numeric variable, or bottom for
/// unreachable valuations.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_DECISIONTREE_H
#define ASTRAL_DOMAINS_DECISIONTREE_H

#include "domains/Interval.h"
#include "domains/LinearForm.h"
#include "support/MemoryTracker.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace astral {

class Thresholds;

class DecisionTree {
public:
  /// Creates a tree over \p BoolCells (<= 6) and \p NumCells, all leaves
  /// reachable with top numeric intervals.
  DecisionTree(std::vector<CellId> BoolCells, std::vector<CellId> NumCells);
  ~DecisionTree();
  DecisionTree(const DecisionTree &O);
  DecisionTree &operator=(const DecisionTree &) = delete;

  const std::vector<CellId> &boolCells() const { return Bools; }
  const std::vector<CellId> &numCells() const { return Nums; }
  size_t leafCount() const { return LeafData.size(); }
  int boolIndexOf(CellId Cell) const;
  int numIndexOf(CellId Cell) const;

  struct Leaf {
    bool Reachable = true;
    std::vector<Interval> Nums;
  };
  const Leaf &leaf(size_t L) const { return LeafData[L]; }
  Leaf &leafMutable(size_t L) { return LeafData[L]; }

  /// Truth of boolean \p BoolIdx in leaf valuation \p L.
  static bool leafBool(size_t L, int BoolIdx) {
    return (L >> BoolIdx) & 1;
  }

  bool isBottom() const;

  // -- Lattice (leaf-wise) ------------------------------------------------
  bool leq(const DecisionTree &O) const;
  void joinWith(const DecisionTree &O);
  void meetWith(const DecisionTree &O);
  void widenWith(const DecisionTree &O, const Thresholds &T,
                 bool WithThresholds = true);
  void narrowWith(const DecisionTree &O);
  bool equal(const DecisionTree &O) const;

  // -- Transfer ------------------------------------------------------------
  /// Kills leaves where boolean \p BoolIdx differs from \p Value.
  void guardBool(int BoolIdx, bool Value);
  /// b := (unknown): new leaf(b=v) = join of old leaves with either value.
  void forgetBool(int BoolIdx);
  /// b := <per-leaf truth>: Truth[L] in {0=false, 1=true, 2=either} gives
  /// the possible values of the condition in old leaf L; leaves flow to the
  /// valuation(s) matching their truth.
  void assignBool(int BoolIdx, const std::vector<uint8_t> &Truth);
  /// x := per-leaf interval (computed by the caller under each leaf's
  /// refinement).
  void assignNum(int NumIdx, const std::vector<Interval> &PerLeaf);
  /// Refines numeric variable \p NumIdx in every leaf.
  void refineNum(int NumIdx, const std::vector<Interval> &PerLeaf);

  /// Join of a numeric variable over reachable leaves (reduction towards
  /// the interval domain).
  Interval numInterval(int NumIdx) const;
  /// Possible values of boolean \p BoolIdx: 0, 1 or 2 (both).
  uint8_t boolValues(int BoolIdx) const;

  /// True when some numeric interval differs across reachable leaves or
  /// some valuation is unreachable — i.e. the tree carries information the
  /// plain interval environment does not (pack usefulness, Sect. 7.2.3).
  bool hasRelationalInfo() const;

  size_t byteSize() const;
  std::string toString() const;

private:
  std::vector<CellId> Bools;
  std::vector<CellId> Nums;
  std::vector<Leaf> LeafData;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_DECISIONTREE_H
