//===- domains/DecisionTree.cpp - Boolean decision trees --------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/DecisionTree.h"

#include "domains/Thresholds.h"

#include <algorithm>

using namespace astral;

DecisionTree::DecisionTree(std::vector<CellId> BoolCells,
                           std::vector<CellId> NumCells)
    : Bools(std::move(BoolCells)), Nums(std::move(NumCells)) {
  assert(Bools.size() <= 6 && "decision tree pack too large");
  assert(std::is_sorted(Bools.begin(), Bools.end()) &&
         "booleans must be ordered (Sect. 6.2.4)");
  LeafData.resize(size_t(1) << Bools.size());
  for (Leaf &L : LeafData)
    L.Nums.assign(Nums.size(), Interval::top());
  memtrack::noteAlloc(byteSize());
}

DecisionTree::~DecisionTree() { memtrack::noteFree(byteSize()); }

DecisionTree::DecisionTree(const DecisionTree &O)
    : Bools(O.Bools), Nums(O.Nums), LeafData(O.LeafData) {
  memtrack::noteAlloc(byteSize());
}

size_t DecisionTree::byteSize() const {
  return LeafData.size() * (sizeof(Leaf) + Nums.size() * sizeof(Interval));
}

int DecisionTree::boolIndexOf(CellId Cell) const {
  for (size_t I = 0; I < Bools.size(); ++I)
    if (Bools[I] == Cell)
      return static_cast<int>(I);
  return -1;
}

int DecisionTree::numIndexOf(CellId Cell) const {
  for (size_t I = 0; I < Nums.size(); ++I)
    if (Nums[I] == Cell)
      return static_cast<int>(I);
  return -1;
}

bool DecisionTree::isBottom() const {
  for (const Leaf &L : LeafData)
    if (L.Reachable)
      return false;
  return true;
}

bool DecisionTree::leq(const DecisionTree &O) const {
  for (size_t I = 0; I < LeafData.size(); ++I) {
    const Leaf &A = LeafData[I], &B = O.LeafData[I];
    if (!A.Reachable)
      continue;
    if (!B.Reachable)
      return false;
    for (size_t J = 0; J < A.Nums.size(); ++J)
      if (!A.Nums[J].leq(B.Nums[J]))
        return false;
  }
  return true;
}

bool DecisionTree::equal(const DecisionTree &O) const {
  for (size_t I = 0; I < LeafData.size(); ++I) {
    const Leaf &A = LeafData[I], &B = O.LeafData[I];
    if (A.Reachable != B.Reachable)
      return false;
    if (!A.Reachable)
      continue;
    for (size_t J = 0; J < A.Nums.size(); ++J)
      if (A.Nums[J] != B.Nums[J])
        return false;
  }
  return true;
}

void DecisionTree::joinWith(const DecisionTree &O) {
  for (size_t I = 0; I < LeafData.size(); ++I) {
    Leaf &A = LeafData[I];
    const Leaf &B = O.LeafData[I];
    if (!B.Reachable)
      continue;
    if (!A.Reachable) {
      A = B;
      continue;
    }
    for (size_t J = 0; J < A.Nums.size(); ++J)
      A.Nums[J] = A.Nums[J].join(B.Nums[J]);
  }
}

void DecisionTree::meetWith(const DecisionTree &O) {
  for (size_t I = 0; I < LeafData.size(); ++I) {
    Leaf &A = LeafData[I];
    const Leaf &B = O.LeafData[I];
    if (!A.Reachable)
      continue;
    if (!B.Reachable) {
      A.Reachable = false;
      continue;
    }
    for (size_t J = 0; J < A.Nums.size(); ++J) {
      A.Nums[J] = A.Nums[J].meet(B.Nums[J]);
      if (A.Nums[J].isBottom()) {
        A.Reachable = false;
        break;
      }
    }
  }
}

void DecisionTree::widenWith(const DecisionTree &O, const Thresholds &T,
                             bool WithThresholds) {
  for (size_t I = 0; I < LeafData.size(); ++I) {
    Leaf &A = LeafData[I];
    const Leaf &B = O.LeafData[I];
    if (!B.Reachable)
      continue;
    if (!A.Reachable) {
      A = B;
      continue;
    }
    for (size_t J = 0; J < A.Nums.size(); ++J)
      A.Nums[J] = WithThresholds ? A.Nums[J].widen(B.Nums[J], T)
                                 : A.Nums[J].widen(B.Nums[J]);
  }
}

void DecisionTree::narrowWith(const DecisionTree &O) {
  for (size_t I = 0; I < LeafData.size(); ++I) {
    Leaf &A = LeafData[I];
    const Leaf &B = O.LeafData[I];
    if (!A.Reachable)
      continue;
    if (!B.Reachable) {
      A.Reachable = false;
      continue;
    }
    for (size_t J = 0; J < A.Nums.size(); ++J)
      A.Nums[J] = A.Nums[J].narrow(B.Nums[J]);
  }
}

void DecisionTree::guardBool(int BoolIdx, bool Value) {
  for (size_t L = 0; L < LeafData.size(); ++L)
    if (leafBool(L, BoolIdx) != Value)
      LeafData[L].Reachable = false;
}

void DecisionTree::forgetBool(int BoolIdx) {
  size_t Bit = size_t(1) << BoolIdx;
  for (size_t L = 0; L < LeafData.size(); ++L) {
    if (L & Bit)
      continue; // Handle each pair once, from the 0 side.
    Leaf &A = LeafData[L];
    Leaf &B = LeafData[L | Bit];
    // Both valuations become the join of the pair.
    if (A.Reachable && B.Reachable) {
      for (size_t J = 0; J < A.Nums.size(); ++J)
        A.Nums[J] = A.Nums[J].join(B.Nums[J]);
      B = A;
    } else if (A.Reachable) {
      B = A;
    } else if (B.Reachable) {
      A = B;
    }
  }
}

void DecisionTree::assignBool(int BoolIdx, const std::vector<uint8_t> &Truth) {
  assert(Truth.size() == LeafData.size());
  size_t Bit = size_t(1) << BoolIdx;
  std::vector<Leaf> NewLeaves(LeafData.size());
  for (Leaf &L : NewLeaves) {
    L.Reachable = false;
    L.Nums.assign(Nums.size(), Interval::bottom());
  }
  auto Contribute = [&](size_t Target, const Leaf &Src) {
    Leaf &Dst = NewLeaves[Target];
    if (!Dst.Reachable) {
      Dst = Src;
      Dst.Reachable = true;
      return;
    }
    for (size_t J = 0; J < Dst.Nums.size(); ++J)
      Dst.Nums[J] = Dst.Nums[J].join(Src.Nums[J]);
  };
  for (size_t L = 0; L < LeafData.size(); ++L) {
    const Leaf &Src = LeafData[L];
    if (!Src.Reachable)
      continue;
    uint8_t T = Truth[L];
    if (T == 1 || T == 2)
      Contribute(L | Bit, Src);
    if (T == 0 || T == 2)
      Contribute(L & ~Bit, Src);
  }
  LeafData = std::move(NewLeaves);
}

void DecisionTree::assignNum(int NumIdx, const std::vector<Interval> &PerLeaf) {
  assert(PerLeaf.size() == LeafData.size());
  for (size_t L = 0; L < LeafData.size(); ++L) {
    if (!LeafData[L].Reachable)
      continue;
    LeafData[L].Nums[NumIdx] = PerLeaf[L];
    if (PerLeaf[L].isBottom())
      LeafData[L].Reachable = false;
  }
}

void DecisionTree::refineNum(int NumIdx,
                             const std::vector<Interval> &PerLeaf) {
  assert(PerLeaf.size() == LeafData.size());
  for (size_t L = 0; L < LeafData.size(); ++L) {
    Leaf &Lf = LeafData[L];
    if (!Lf.Reachable)
      continue;
    Lf.Nums[NumIdx] = Lf.Nums[NumIdx].meet(PerLeaf[L]);
    if (Lf.Nums[NumIdx].isBottom())
      Lf.Reachable = false;
  }
}

Interval DecisionTree::numInterval(int NumIdx) const {
  Interval R = Interval::bottom();
  for (const Leaf &L : LeafData)
    if (L.Reachable)
      R = R.join(L.Nums[NumIdx]);
  return R;
}

uint8_t DecisionTree::boolValues(int BoolIdx) const {
  bool SawTrue = false, SawFalse = false;
  for (size_t L = 0; L < LeafData.size(); ++L) {
    if (!LeafData[L].Reachable)
      continue;
    if (leafBool(L, BoolIdx))
      SawTrue = true;
    else
      SawFalse = true;
  }
  if (SawTrue && SawFalse)
    return 2;
  return SawTrue ? 1 : 0;
}

bool DecisionTree::hasRelationalInfo() const {
  bool AnyUnreachable = false;
  for (const Leaf &L : LeafData)
    if (!L.Reachable)
      AnyUnreachable = true;
  if (AnyUnreachable)
    return true;
  for (size_t J = 0; J < Nums.size(); ++J) {
    Interval First = LeafData.empty() ? Interval::top() : LeafData[0].Nums[J];
    for (const Leaf &L : LeafData)
      if (L.Nums[J] != First)
        return true;
  }
  return false;
}

std::string DecisionTree::toString() const {
  std::string Out;
  for (size_t L = 0; L < LeafData.size(); ++L) {
    Out += "[";
    for (size_t B = 0; B < Bools.size(); ++B)
      Out += leafBool(L, static_cast<int>(B)) ? '1' : '0';
    Out += "]: ";
    if (!LeafData[L].Reachable) {
      Out += "_|_; ";
      continue;
    }
    for (size_t J = 0; J < Nums.size(); ++J)
      Out += LeafData[L].Nums[J].toString() + " ";
    Out += "; ";
  }
  return Out;
}
