//===- domains/LinearForm.h - Interval linear forms --------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linear forms with interval coefficients (Sect. 6.3): sum_i [a_i,b_i]*v_i +
/// [a,b] over abstract cells. The linearizer turns program expressions into
/// these forms (adding rounding-error terms for float operations); the
/// interval, octagon and ellipsoid transfer functions consume them.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_LINEARFORM_H
#define ASTRAL_DOMAINS_LINEARFORM_H

#include "domains/Interval.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace astral {

using CellId = uint32_t;

class LinearForm {
public:
  /// An unusable form (non-linear construct); operations propagate it.
  static LinearForm invalid() {
    LinearForm F;
    F.IsValid = false;
    return F;
  }
  static LinearForm constant(Interval C) {
    LinearForm F;
    F.ConstTerm = C;
    return F;
  }
  static LinearForm var(CellId Cell) {
    LinearForm F;
    F.ConstTerm = Interval::point(0);
    F.TermList.push_back({Cell, Interval::point(1.0)});
    return F;
  }

  bool valid() const { return IsValid; }
  const Interval &constTerm() const { return ConstTerm; }
  const std::vector<std::pair<CellId, Interval>> &terms() const {
    return TermList;
  }
  bool isConstant() const { return IsValid && TermList.empty(); }

  /// Coefficient of \p Cell ([0,0] when absent).
  Interval coeff(CellId Cell) const;

  /// Adds [-E, E] to the constant term (rounding-error absorption).
  void addError(double E);
  /// Adds \p C to the constant term.
  void addConstant(Interval C);

  LinearForm add(const LinearForm &O) const;
  LinearForm sub(const LinearForm &O) const;
  LinearForm negate() const;
  /// Multiplies every coefficient by the constant interval \p C.
  LinearForm scale(Interval C) const;
  /// Removes the term for \p Cell, returning its coefficient.
  LinearForm without(CellId Cell, Interval *CoeffOut = nullptr) const;

  /// True when the form is exactly +/-v + [a,b] or +/-v +/- w + [a,b] with
  /// unit coefficients — the octagon-expressible shapes.
  struct OctShape {
    int NumVars = 0; ///< 0, 1 or 2 (-1: not octagonal).
    CellId V1 = 0, V2 = 0;
    int S1 = 1, S2 = 1; ///< Signs.
    Interval C;
  };
  OctShape octagonShape() const;

private:
  bool IsValid = true;
  Interval ConstTerm = Interval::point(0);
  /// Sorted by cell id.
  std::vector<std::pair<CellId, Interval>> TermList;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_LINEARFORM_H
