//===- domains/Ellipsoid.h - Ellipsoid abstract domain -----------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ellipsoid abstract domain eps_{a,b} of Sect. 6.2.3, designed for the
/// simplified second-order digital filter of Fig. 1:
///
///   if (B) { Y := i; X := j; }
///   else   { X' := a*X - b*Y + t;  Y := X;  X := X'; }
///
/// An abstract element tracks k such that X^2 - a*X*Y + b*Y^2 <= k.
/// Proposition 1: for 0 < b < 1 and a^2 - 4b < 0, the constraint is
/// preserved by the affine transformation whenever k >= (tM / (1-sqrt(b)))^2
/// with |t| <= tM. The transfer function delta(k) accounts for float
/// rounding via the relative error constant f:
///
///   delta(k) = ( (sqrt(b) + eps_f) * sqrt(k) + (1+f) * tM )^2,
///   eps_f    = 4 f (|a| sqrt(b) + b) / sqrt(4b - a^2),
///
/// computed with upward rounding. Interval extraction:
///   |X| <= 2 sqrt(b * k / (4b - a^2)).
///
/// The domain cannot be precise alone (reinitialization, guards); the
/// reduction with the interval domain (reduceFromIntervals) implements the
/// approximate reduced product the paper describes.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_ELLIPSOID_H
#define ASTRAL_DOMAINS_ELLIPSOID_H

#include "domains/Interval.h"
#include "domains/LinearForm.h"

#include <map>
#include <string>
#include <utility>

namespace astral {

class Thresholds;

/// Static shape of one filter site: X' := A*X - B*Y + t.
struct FilterParams {
  double A = 0.0;
  double B = 0.0;
  /// Relative float error of the analyzed program's arithmetic (binary32 by
  /// default; binary64 when the filter state is double).
  double F = rounded::RelErrFloat32;

  /// Prop. 1 applicability: 0 < b < 1 and a^2 - 4b < 0.
  bool stable() const { return B > 0.0 && B < 1.0 && A * A - 4.0 * B < 0.0; }
  /// Prop. 1 threshold (tM / (1 - sqrt b))^2: any k above this is invariant.
  double minInvariantK(double TM) const;
};

/// One ellipsoidal constraint X^2 - a*X*Y + b*Y^2 <= K. K = +inf is top;
/// K < 0 encodes bottom (unreachable).
struct Ellipsoid {
  double K = INFINITY;

  static Ellipsoid top() { return Ellipsoid{INFINITY}; }
  static Ellipsoid bottom() { return Ellipsoid{-1.0}; }
  bool isTop() const { return std::isinf(K) && K > 0; }
  bool isBottom() const { return K < 0; }

  bool operator==(const Ellipsoid &O) const { return K == O.K; }

  bool leq(const Ellipsoid &O) const {
    return isBottom() || K <= O.K;
  }
  Ellipsoid join(const Ellipsoid &O) const {
    if (isBottom())
      return O;
    if (O.isBottom())
      return *this;
    return Ellipsoid{std::max(K, O.K)};
  }
  Ellipsoid meet(const Ellipsoid &O) const {
    if (isBottom() || O.isBottom())
      return bottom();
    return Ellipsoid{std::min(K, O.K)};
  }
  Ellipsoid widen(const Ellipsoid &O, const Thresholds &T) const;
  Ellipsoid narrow(const Ellipsoid &O) const {
    if (isBottom() || O.isBottom())
      return bottom();
    return Ellipsoid{std::isinf(K) ? O.K : K};
  }

  /// delta(k): the new K after X' := aX - bY + t with |t| <= TM, including
  /// rounding (Sect. 6.2.3, assignment case 2).
  Ellipsoid afterFilterStep(const FilterParams &P, double TM) const;

  /// Largest |X| compatible with the constraint (upward-rounded).
  double boundX(const FilterParams &P) const;

  /// Reduction from the interval domain: K can be lowered to the sup of
  /// X^2 - a*X*Y + b*Y^2 over the boxes; when X and Y are provably equal the
  /// sharper (1 - a + b) * X^2 bound applies (paper's reduction step).
  Ellipsoid reduceFromIntervals(const FilterParams &P, const Interval &X,
                                const Interval &Y, bool Equal) const;

  std::string toString() const;
};

/// Ellipsoidal constraints of one filter pack: the paper's function r from
/// *ordered* variable pairs to bounds k, (X, Y) -> k meaning
/// X^2 - a*X*Y + b*Y^2 <= k. The quadratic form is not symmetric, so the
/// orientation of a pair is semantically significant: the first component
/// plays the unit-coefficient X role, the second the b-coefficient Y role.
struct EllipsoidState {
  std::map<std::pair<CellId, CellId>, double> K;

  bool operator==(const EllipsoidState &O) const { return K == O.K; }

  /// Bound for the ordered pair (X, Y) exactly as stored; +inf when absent.
  double get(CellId X, CellId Y) const {
    auto It = K.find({X, Y});
    return It == K.end() ? INFINITY : It->second;
  }

  /// Bound for the ordered pair (X, Y), falling back to a constraint stored
  /// under the swapped orientation (Y, X): the swapped ellipse bounds a box
  /// |X| <= 2 sqrt(k/D), |Y| <= 2 sqrt(b*k/D) with D = 4b - a^2 (Prop. 1),
  /// and the (X, Y)-oriented form is then bounded over that box. Without
  /// this fallback a filter whose state pair was recorded in the opposite
  /// role order silently reads +inf and loses the invariant.
  double get(CellId X, CellId Y, const FilterParams &P) const;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_ELLIPSOID_H
