//===- domains/RelationalDomain.cpp - Uniform relational-domain API ---------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/RelationalDomain.h"

using namespace astral;

const char *astral::domainKindName(DomainKind K) {
  switch (K) {
  case DomainKind::Interval:
    return "interval";
  case DomainKind::Clocked:
    return "clocked";
  case DomainKind::Octagon:
    return "octagon";
  case DomainKind::DecisionTree:
    return "tree";
  case DomainKind::Ellipsoid:
    return "ellipsoid";
  }
  return "?";
}

std::optional<DomainSet> DomainSet::parse(const std::string &List,
                                          std::string &Err) {
  DomainSet S; // Interval only; named domains are added.
  size_t At = 0;
  bool Any = false;
  while (At <= List.size()) {
    size_t Comma = List.find(',', At);
    std::string Name = List.substr(
        At, Comma == std::string::npos ? std::string::npos : Comma - At);
    At = Comma == std::string::npos ? List.size() + 1 : Comma + 1;
    if (Name.empty())
      continue;
    Any = true;
    if (Name == "interval" || Name == "intervals")
      S.enable(DomainKind::Interval);
    else if (Name == "clocked" || Name == "clock")
      S.enable(DomainKind::Clocked);
    else if (Name == "octagon" || Name == "octagons")
      S.enable(DomainKind::Octagon);
    else if (Name == "tree" || Name == "trees" || Name == "decision-tree")
      S.enable(DomainKind::DecisionTree);
    else if (Name == "ellipsoid" || Name == "ellipsoids")
      S.enable(DomainKind::Ellipsoid);
    else if (Name == "all")
      S = DomainSet::all();
    else {
      Err = "unknown domain '" + Name + "' (expected a comma-separated "
            "subset of interval,clocked,octagon,tree,ellipsoid)";
      return std::nullopt;
    }
  }
  if (!Any) {
    Err = "empty domain list";
    return std::nullopt;
  }
  return S;
}

std::string DomainSet::toString() const {
  std::string Out = "interval";
  static constexpr DomainKind Order[] = {
      DomainKind::Clocked, DomainKind::Octagon, DomainKind::DecisionTree,
      DomainKind::Ellipsoid};
  for (DomainKind K : Order)
    if (has(K)) {
      Out += ',';
      Out += domainKindName(K);
    }
  return Out;
}

DomainState::~DomainState() = default;

DomainState::Ptr DomainState::guard(const RelGuard &, const DomainEvalContext &,
                                    ReductionChannel &) const {
  return nullptr;
}

DomainState::Ptr DomainState::guardBool(CellId, bool,
                                        ReductionChannel &) const {
  return nullptr;
}

DomainState::Ptr DomainState::refineIn(const ReductionChannel &) const {
  return nullptr;
}

DomainState::Ptr DomainState::preJoinWith(const DomainState &,
                                          const DomainEvalContext &) const {
  return nullptr;
}
