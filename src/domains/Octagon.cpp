//===- domains/Octagon.cpp - Octagon abstract domain ------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/Octagon.h"

#include "domains/Thresholds.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <optional>

using namespace astral;

namespace {
double addUpInf(double A, double B) {
  if (std::isinf(A) || std::isinf(B))
    return (A > 0 || B > 0) ? INFINITY : -INFINITY;
  return rounded::addUp(A, B);
}
} // namespace

Octagon::Octagon(std::vector<CellId> Cells, OctClosureMode ClosureMode,
                 std::shared_ptr<OctagonClosureStats> ClosureStats)
    : Vars(std::move(Cells)), N(static_cast<int>(Vars.size()) * 2),
      Mode(ClosureMode), Stats(std::move(ClosureStats)) {
  assert(!Vars.empty() && Vars.size() <= 16 && "pack size out of range");
  Lookup.reserve(Vars.size());
  for (size_t I = 0; I < Vars.size(); ++I)
    Lookup.push_back({Vars[I], static_cast<int>(I)});
  std::sort(Lookup.begin(), Lookup.end());
  M.assign(static_cast<size_t>(N) * N, INFINITY);
  for (int I = 0; I < N; ++I)
    at(I, I) = 0.0;
  Closed = true;
  memtrack::noteAlloc(M.size() * sizeof(double));
}

Octagon::~Octagon() { memtrack::noteFree(M.size() * sizeof(double)); }

Octagon::Octagon(const Octagon &O)
    : Vars(O.Vars), Lookup(O.Lookup), N(O.N), M(O.M),
      PivotDirty(O.PivotDirty), StarDirty(O.StarDirty), Closed(O.Closed),
      Empty(O.Empty), Mode(O.Mode), Stats(O.Stats) {
  memtrack::noteAlloc(M.size() * sizeof(double));
}

int Octagon::indexOf(CellId Cell) const {
  auto It = std::lower_bound(
      Lookup.begin(), Lookup.end(), Cell,
      [](const std::pair<CellId, int> &P, CellId C) { return P.first < C; });
  return (It != Lookup.end() && It->first == Cell) ? It->second : -1;
}

bool Octagon::isBottom() const {
  if (Empty)
    return true;
  for (int I = 0; I < N; ++I)
    if (at(I, I) < 0.0)
      return true;
  return false;
}

void Octagon::propagateThrough(int K) {
  for (int I = 0; I < N; ++I) {
    double MIK = at(I, K);
    if (std::isinf(MIK) && MIK > 0)
      continue;
    for (int J = 0; J < N; ++J) {
      double Via = addUpInf(MIK, at(K, J));
      if (Via < at(I, J))
        at(I, J) = Via;
    }
  }
}

bool Octagon::finishClosure() {
  // Strengthening: x_i - x_j <= (x_i - x_bar(i))/2 + (x_bar(j) - x_j)/2.
  // Entries the strengthening lowers are constraints the propagation pass
  // has not seen — the closed form here (matching the historical full
  // algorithm) is "path-closed, then strengthened once", not a joint
  // fixpoint of both rules. Those entries therefore become the carried
  // dirty work of the *next* closure: a small vertex cover of their
  // endpoint variables goes into StarDirty, whose rows/columns the next
  // incremental closure relaxes and pivots through.
  uint32_t Incidence[16] = {};
  bool AnyFired = false;
  for (int I = 0; I < N; ++I) {
    double DI = at(I, I ^ 1);
    for (int J = 0; J < N; ++J) {
      double DJ = at(J ^ 1, J);
      double Via = addUpInf(DI, DJ) / 2.0;
      if (Via < at(I, J)) {
        at(I, J) = Via;
        Incidence[I >> 1] |= 1u << (J >> 1);
        AnyFired = true;
      }
    }
  }
  Closed = true;
  PivotDirty = 0;
  StarDirty = 0;
  if (AnyFired) {
    // Greedy vertex cover of the fired entries' endpoint-variable pairs:
    // every fired entry must be incident to a StarDirty variable. In
    // steady state one variable's unary bound changed and every fired
    // entry is incident to it, so the cover is a single star.
    uint32_t Partners[16];
    for (size_t V = 0; V < Vars.size(); ++V)
      Partners[V] = Incidence[V];
    for (size_t V = 0; V < Vars.size(); ++V)
      for (size_t W = 0; W < Vars.size(); ++W)
        if (Incidence[V] & (1u << W))
          Partners[W] |= 1u << V;
    for (;;) {
      size_t Best = 0, BestCount = 0;
      for (size_t V = 0; V < Vars.size(); ++V) {
        size_t C = static_cast<size_t>(std::popcount(Partners[V]));
        if (C > BestCount) {
          BestCount = C;
          Best = V;
        }
      }
      if (BestCount == 0)
        break;
      StarDirty |= 1u << Best;
      Partners[Best] = 0;
      for (size_t V = 0; V < Vars.size(); ++V)
        Partners[V] &= ~(1u << Best);
    }
  }
  for (int I = 0; I < N; ++I) {
    if (at(I, I) < 0.0) {
      Empty = true;
      return false;
    }
    at(I, I) = 0.0;
  }
  return true;
}

bool Octagon::close() {
  if (Empty)
    return false;
  if (Closed)
    return true;
  // Incremental closure: Floyd-Warshall restricted to the dirty
  // rows/columns. Constraints tightened by transfer functions are
  // incident, on both endpoints, to PivotDirty variables' nodes; star-
  // shaped updates (the smart assignment's rebuilt row/column, the
  // previous closure's strengthening fan recorded by finishClosure) are
  // incident to a StarDirty variable on at least one endpoint, so those
  // rows/columns are first completed by a one-round relaxation against
  // the rest of the matrix and then pivoted. Any new shortest path then
  // decomposes into already-propagated entries joined at dirty pivots,
  // which restores the same closure as a full sweep in
  // O((p + 3s) * (2k)^2) instead of O((2k)^3).
  uint32_t Pivot = PivotDirty & ~StarDirty;
  size_t P = static_cast<size_t>(std::popcount(Pivot));
  size_t S = static_cast<size_t>(std::popcount(StarDirty));
  // Cost gate, in pivot-equivalents: a pivot-dirty variable costs its two
  // Floyd-Warshall pivots; a star-dirty variable additionally pays the
  // four row/column relaxations, which skip infinite entries and touch a
  // single row/column each — measured at roughly one extra pivot. Strict
  // inequality: when the restricted pass would do as much work as the
  // full sweep (in particular the all-dirty post-widening closure), run —
  // and meter — the full algorithm.
  bool Incremental = Mode == OctClosureMode::Incremental &&
                     (PivotDirty | StarDirty) != 0 &&
                     2 * P + 3 * S < 2 * Vars.size();
  if (Stats) {
    auto &Counter = Incremental ? Stats->Incremental : Stats->Full;
    Counter.fetch_add(1, std::memory_order_relaxed);
  }
  if (Incremental) {
    uint32_t All = Pivot | StarDirty;
    for (size_t V = 0; V < Vars.size(); ++V) {
      if (!(All & (1u << V)))
        continue;
      int Even = static_cast<int>(2 * V), Odd = Even + 1;
      if (StarDirty & (1u << V)) {
        relaxColumn(Even);
        relaxColumn(Odd);
        relaxRow(Even);
        relaxRow(Odd);
      }
      propagateThrough(Even);
      propagateThrough(Odd);
    }
  } else {
    for (int K = 0; K < N; ++K)
      propagateThrough(K);
  }
  return finishClosure();
}

void Octagon::relaxColumn(int C) {
  // One relaxation round m(i,C) <- min_a m(i,a) + m(a,C): composes every
  // already-propagated path with one direct edge into C. Together with
  // relaxRow it completes C's row/column before C's nodes are pivoted, so
  // star-shaped edge sets incident to C need no pivots elsewhere.
  for (int A = 0; A < N; ++A) {
    if (A == C)
      continue;
    double MAC = at(A, C);
    if (std::isinf(MAC) && MAC > 0)
      continue;
    for (int I = 0; I < N; ++I) {
      double Via = addUpInf(at(I, A), MAC);
      if (Via < at(I, C))
        at(I, C) = Via;
    }
  }
}

void Octagon::relaxRow(int R) {
  // Mirror of relaxColumn: m(R,j) <- min_b m(R,b) + m(b,j).
  for (int B = 0; B < N; ++B) {
    if (B == R)
      continue;
    double MRB = at(R, B);
    if (std::isinf(MRB) && MRB > 0)
      continue;
    for (int J = 0; J < N; ++J) {
      double Via = addUpInf(MRB, at(B, J));
      if (Via < at(R, J))
        at(R, J) = Via;
    }
  }
}

bool Octagon::leq(const Octagon &O) const {
  assert(Vars == O.Vars && "pack mismatch");
  if (isBottom())
    return true;
  if (O.isBottom())
    return false;
  for (size_t I = 0; I < M.size(); ++I)
    if (M[I] > O.M[I])
      return false;
  return true;
}

bool Octagon::equal(const Octagon &O) const {
  bool BotA = isBottom(), BotB = O.isBottom();
  if (BotA && BotB)
    return true;
  // Raw equality only counts when the detected bottom-ness agrees too: an
  // Empty-flagged octagon can carry an untouched matrix (bottomLike, a
  // bottom meetVarInterval), which must not compare equal to top.
  if (BotA == BotB && M == O.M)
    return true;
  // Both sides closed: detected bottom-ness and the raw comparison were
  // exact (a closed DBM cannot be empty without its flag set).
  if (Closed && O.Closed)
    return false;
  // Normalize via closure so representation differences (a closed and a
  // non-closed DBM of the same set) do not read as inequality. Only the
  // non-closed side(s) pay the copy.
  std::optional<Octagon> NA, NB;
  const Octagon *PA = this;
  if (!Closed) {
    NA.emplace(*this);
    NA->close();
    PA = &*NA;
  }
  const Octagon *PB = &O;
  if (!O.Closed) {
    NB.emplace(O);
    NB->close();
    PB = &*NB;
  }
  bool EmptyA = PA->isBottom(), EmptyB = PB->isBottom();
  if (EmptyA || EmptyB)
    return EmptyA == EmptyB;
  return PA->M == PB->M;
}

void Octagon::joinWith(const Octagon &O) {
  assert(Vars == O.Vars && "pack mismatch");
  if (O.isBottom())
    return;
  if (isBottom()) {
    M = O.M;
    PivotDirty = O.PivotDirty;
    StarDirty = O.StarDirty;
    Closed = O.Closed;
    Empty = O.Empty;
    return;
  }
  for (size_t I = 0; I < M.size(); ++I)
    M[I] = std::max(M[I], O.M[I]);
  // Join of closed operands is closed. A surviving entry may be the other
  // side's not-yet-propagated (strengthened) bound, so the carried
  // dirty-sets merge.
  PivotDirty |= O.PivotDirty;
  StarDirty |= O.StarDirty;
}

void Octagon::meetWith(const Octagon &O) {
  assert(Vars == O.Vars && "pack mismatch");
  for (int P = 0; P < N; ++P)
    for (int Q = 0; Q < N; ++Q)
      if (O.at(P, Q) < at(P, Q)) {
        at(P, Q) = O.at(P, Q);
        markDirty(P, Q);
      }
  Empty = Empty || O.Empty;
}

void Octagon::widenWith(const Octagon &O, const Thresholds &T,
                        bool WithThresholds) {
  assert(Vars == O.Vars && "pack mismatch");
  if (O.isBottom())
    return;
  if (isBottom()) {
    M = O.M;
    PivotDirty = O.PivotDirty;
    StarDirty = O.StarDirty;
    Closed = O.Closed;
    Empty = O.Empty;
    return;
  }
  for (int P = 0; P < N; ++P) {
    for (int Q = 0; Q < N; ++Q) {
      double Mine = at(P, Q);
      double Theirs = O.at(P, Q);
      if (Theirs > Mine) {
        if (!WithThresholds) {
          at(P, Q) = INFINITY;
          continue;
        }
        // Unary constraints encode 2c; apply thresholds on c. No in-place
        // eps absorption here: DBM bounds feed back into the transfer
        // functions almost 1-Lipschitz, so absorbing rounding dribble would
        // ratchet forever; jumping to the next rung converges in one step
        // and the per-cell reduction keeps the precise interval anyway.
        bool Unary = (Q == (P ^ 1));
        double C = Unary ? Theirs / 2.0 : Theirs;
        double Widened = T.nextAbove(C);
        at(P, Q) = Unary ? 2.0 * Widened : Widened;
      }
    }
  }
  // Do not close after widening (termination): the result is a sound
  // superset whose entries moved arbitrarily, so the whole DBM is dirty.
  markAllDirty();
}

void Octagon::narrowWith(const Octagon &O) {
  assert(Vars == O.Vars && "pack mismatch");
  for (int P = 0; P < N; ++P)
    for (int Q = 0; Q < N; ++Q) {
      double Mine = at(P, Q);
      if (std::isinf(Mine) && Mine > 0 && O.at(P, Q) < Mine) {
        at(P, Q) = O.at(P, Q);
        markDirty(P, Q);
      }
    }
  Empty = Empty || O.Empty;
}

void Octagon::forget(int Idx) {
  // Preserve indirect constraints before dropping direct ones. When the
  // DBM is already closed this costs nothing; when only a few variables
  // are dirty, close() propagates paths through just their rows/columns —
  // in particular, a forget right after tightenings of the dropped
  // variable pays one single-variable O((2k)^2) closure, not a full sweep.
  close();
  int P = 2 * Idx, Pb = P + 1;
  for (int Q = 0; Q < N; ++Q) {
    if (Q != P)
      at(P, Q) = INFINITY;
    if (Q != Pb)
      at(Pb, Q) = INFINITY;
    if (Q != P)
      at(Q, P) = INFINITY;
    if (Q != Pb)
      at(Q, Pb) = INFINITY;
  }
  at(P, Pb) = INFINITY;
  at(Pb, P) = INFINITY;
  // Dropping rows/columns of a closed DBM leaves it closed.
}

Interval Octagon::varInterval(int Idx) const {
  if (isBottom())
    return Interval::bottom();
  int P = 2 * Idx;
  double Hi = at(P, P + 1) / 2.0;
  double Lo = -at(P + 1, P) / 2.0;
  return Interval(Lo, Hi);
}

void Octagon::meetVarInterval(int Idx, const Interval &I) {
  if (I.isBottom()) {
    Empty = true;
    return;
  }
  int P = 2 * Idx;
  if (std::isfinite(I.Hi))
    setBound(P, P + 1, 2.0 * I.Hi);
  if (std::isfinite(I.Lo))
    setBound(P + 1, P, -2.0 * I.Lo);
}

void Octagon::shiftVar(int Idx, const Interval &Delta) {
  // v := v + [a, b]: x_{2i} grows by [a,b], x_{2i+1} by [-b,-a].
  int P = 2 * Idx, Pb = P + 1;
  double A = Delta.Lo, B = Delta.Hi;
  for (int Q = 0; Q < N; ++Q) {
    if (Q == P || Q == Pb)
      continue;
    at(P, Q) = addUpInf(at(P, Q), B);    // x_P - x_Q <= m + b
    at(Q, P) = addUpInf(at(Q, P), -A);   // x_Q - x_P <= m - a
    at(Pb, Q) = addUpInf(at(Pb, Q), -A); // -v - x_Q <= m - a
    at(Q, Pb) = addUpInf(at(Q, Pb), B);
  }
  at(P, Pb) = addUpInf(at(P, Pb), 2 * B);
  at(Pb, P) = addUpInf(at(Pb, P), -2 * A);
  // A shift preserves closure.
}

double Octagon::formUpperBound(
    const LinearForm &Form,
    const std::function<Interval(CellId)> &CellRange) const {
  if (!Form.valid())
    return INFINITY;
  double Upper = Form.constTerm().Hi;
  // Greedy pairing of unit-coefficient pack terms through binary
  // constraints; the remainder is bounded term-wise with the tighter of the
  // octagon unary bound and the external interval.
  struct Term {
    int Idx;      ///< Pack index or -1.
    CellId Cell;
    Interval Coef;
    bool Used = false;
  };
  std::vector<Term> Terms;
  for (const auto &[Cell, Coef] : Form.terms()) {
    Term T;
    T.Idx = indexOf(Cell);
    T.Cell = Cell;
    T.Coef = Coef;
    Terms.push_back(T);
  }
  auto UnitSign = [](const Interval &C) -> int {
    if (C == Interval::point(1.0))
      return 1;
    if (C == Interval::point(-1.0))
      return -1;
    return 0;
  };
  for (size_t I = 0; I < Terms.size(); ++I) {
    if (Terms[I].Used || Terms[I].Idx < 0)
      continue;
    int SI = UnitSign(Terms[I].Coef);
    if (SI == 0)
      continue;
    for (size_t J = I + 1; J < Terms.size(); ++J) {
      if (Terms[J].Used || Terms[J].Idx < 0)
        continue;
      int SJ = UnitSign(Terms[J].Coef);
      if (SJ == 0)
        continue;
      // Bound SI*vi + SJ*vj with the DBM: it equals x_p - x_q with
      // p = (SI>0 ? 2i : 2i+1), q = (SJ>0 ? 2j+1 : 2j).
      int Pi = SI > 0 ? 2 * Terms[I].Idx : 2 * Terms[I].Idx + 1;
      int Qj = SJ > 0 ? 2 * Terms[J].Idx + 1 : 2 * Terms[J].Idx;
      double B = at(Pi, Qj);
      if (std::isfinite(B)) {
        Upper = addUpInf(Upper, B);
        Terms[I].Used = Terms[J].Used = true;
        break;
      }
    }
  }
  for (const Term &T : Terms) {
    if (T.Used)
      continue;
    Interval R = T.Idx >= 0 ? varInterval(T.Idx).meet(CellRange(T.Cell))
                            : CellRange(T.Cell);
    if (R.isBottom())
      return Upper; // Unreachable; any bound is sound.
    Interval Contribution = Interval::fmul(T.Coef, R);
    Upper = addUpInf(Upper, Contribution.Hi);
  }
  return Upper;
}

void Octagon::assign(int Idx, const LinearForm &Form,
                     const std::function<Interval(CellId)> &CellRange) {
  if (!Form.valid()) {
    forget(Idx);
    return;
  }
  close();
  if (Empty)
    return;
  CellId Self = Vars[Idx];
  LinearForm::OctShape Shape = Form.octagonShape();

  // Exact case: v := v + [a, b].
  if (Shape.NumVars == 1 && Shape.V1 == Self && Shape.S1 == 1) {
    shiftVar(Idx, Shape.C);
    return;
  }

  // Exact case: v := +/-w + [a,b], w in pack, w != v.
  if (Shape.NumVars == 1 && Shape.V1 != Self) {
    int W = indexOf(Shape.V1);
    if (W >= 0) {
      forget(Idx);
      int P = 2 * Idx, Pb = P + 1;
      int Q = Shape.S1 > 0 ? 2 * W : 2 * W + 1;
      int Qb = Q ^ 1;
      // v - s*w <= b  and  s*w - v <= -a. Only Idx's and W's rows are
      // touched, so the closing sweep below is incremental.
      if (std::isfinite(Shape.C.Hi)) {
        setBound(P, Q, Shape.C.Hi);
        setBound(Qb, Pb, Shape.C.Hi);
      }
      if (std::isfinite(Shape.C.Lo)) {
        setBound(Q, P, -Shape.C.Lo);
        setBound(Pb, Qb, -Shape.C.Lo);
      }
      close();
      return;
    }
  }

  // General case ("smart" fallback): forget v, then synthesize interval
  // bounds for v, v - w and v + w for every pack variable w by evaluating
  // the appropriate residual form (this is how c <= L - Z <= d is derived
  // from L := Z + V in the paper's example).
  Octagon Before(*this);
  forget(Idx);
  // The fresh bounds below all touch Idx's row/column only: a star of
  // edges centered on Idx's nodes. The generic both-endpoint dirty marking
  // would be sound but pessimal (every pack variable dirty, forcing a full
  // sweep), so the marks are reset afterwards and the star handed to the
  // dedicated single-variable closure.
  uint32_t CarriedPivot = PivotDirty; // The forget-closure's carried work.
  uint32_t CarriedStar = StarDirty;
  LinearForm SelfForm = Form.without(Self); // Self-references would need the
  if (!(Form.coeff(Self) == Interval::point(0)))
    SelfForm = LinearForm::invalid(); // old value; fall back to forgetting.

  auto BoundAgainst = [&](const LinearForm &F, int P, int Q) {
    if (!F.valid())
      return;
    double Hi = Before.formUpperBound(F, CellRange);
    if (std::isfinite(Hi))
      setBound(P, Q, Hi);
    double NegLo = Before.formUpperBound(F.negate(), CellRange);
    if (std::isfinite(NegLo))
      setBound(Q, P, NegLo);
  };

  int P = 2 * Idx, Pb = P + 1;
  if (SelfForm.valid()) {
    // Unary: v <= sup(form), v >= inf(form). Encoded as doubled bounds.
    double Hi = Before.formUpperBound(SelfForm, CellRange);
    if (std::isfinite(Hi))
      setBound(P, Pb, 2.0 * Hi);
    double NegLo = Before.formUpperBound(SelfForm.negate(), CellRange);
    if (std::isfinite(NegLo))
      setBound(Pb, P, 2.0 * NegLo);
    for (size_t W = 0; W < Vars.size(); ++W) {
      if (static_cast<int>(W) == Idx)
        continue;
      LinearForm MinusW = SelfForm.sub(LinearForm::var(Vars[W]));
      BoundAgainst(MinusW, P, 2 * static_cast<int>(W));
      LinearForm PlusW = SelfForm.add(LinearForm::var(Vars[W]));
      BoundAgainst(PlusW, P, 2 * static_cast<int>(W) + 1);
    }
  }
  if (!Closed) {
    PivotDirty = CarriedPivot;
    StarDirty = CarriedStar | (1u << static_cast<uint32_t>(Idx));
  }
  close();
}

void Octagon::guardLe(const LinearForm &Form,
                      const std::function<Interval(CellId)> &CellRange) {
  LinearForm::OctShape S = Form.octagonShape();
  if (S.NumVars <= 0)
    return;
  close();
  if (Empty)
    return;
  // s1*v1 (+ s2*v2) + [a,b] <= 0  =>  s1*v1 (+ s2*v2) <= -a.
  double C = -S.C.Lo;
  if (!std::isfinite(C))
    return;
  int I1 = indexOf(S.V1);
  if (S.NumVars == 1) {
    if (I1 < 0)
      return;
    if (S.S1 > 0)
      setBound(2 * I1, 2 * I1 + 1, 2.0 * C);
    else
      setBound(2 * I1 + 1, 2 * I1, 2.0 * C);
    close();
    return;
  }
  int I2 = indexOf(S.V2);
  if (I1 < 0 || I2 < 0) {
    // One side outside the pack: refine the in-pack side using the interval
    // of the out-of-pack side.
    if (I1 < 0 && I2 < 0)
      return;
    int In = I1 >= 0 ? I1 : I2;
    int SIn = I1 >= 0 ? S.S1 : S.S2;
    CellId OutCell = I1 >= 0 ? S.V2 : S.V1;
    int SOut = I1 >= 0 ? S.S2 : S.S1;
    Interval Out = CellRange(OutCell);
    if (Out.isBottom())
      return;
    Interval Scaled = SOut > 0 ? Out : Interval::fneg(Out);
    // s_in * v_in <= C - scaled.lo.
    double Bound = rounded::subUp(C, Scaled.Lo);
    if (!std::isfinite(Bound))
      return;
    if (SIn > 0)
      setBound(2 * In, 2 * In + 1, 2.0 * Bound);
    else
      setBound(2 * In + 1, 2 * In, 2.0 * Bound);
    close();
    return;
  }
  int P, Q;
  if (S.S1 > 0 && S.S2 > 0) { // v1 + v2 <= C
    P = 2 * I1;
    Q = 2 * I2 + 1;
  } else if (S.S1 > 0 && S.S2 < 0) { // v1 - v2 <= C
    P = 2 * I1;
    Q = 2 * I2;
  } else if (S.S1 < 0 && S.S2 > 0) { // v2 - v1 <= C
    P = 2 * I2;
    Q = 2 * I1;
  } else { // -v1 - v2 <= C
    P = 2 * I1 + 1;
    Q = 2 * I2;
  }
  setBound(P, Q, C);
  setBound(Q ^ 1, P ^ 1, C);
  close();
}

/// True when the binary entry (P, Q) is strictly tighter than what the
/// unary bounds already imply (the closure strengthening materializes
/// (hi(x_P) + hi(-x_Q))/2 into every pair, which carries no information).
bool Octagon::entryIsInformative(int P, int Q) const {
  double B = at(P, Q);
  if (!std::isfinite(B))
    return false;
  double HiP = at(P, P ^ 1);   // 2 * hi(x_P).
  double HiNQ = at(Q ^ 1, Q);  // 2 * hi(-x_Q).
  double Implied = (HiP + HiNQ) / 2.0;
  if (!std::isfinite(Implied))
    return true; // Bounded pair of individually unbounded variables.
  double Tol = 1e-9 * std::max(1.0, std::fabs(Implied));
  return B < Implied - Tol;
}

bool Octagon::hasRelationalInfo() const {
  for (int P = 0; P < N; ++P)
    for (int Q = 0; Q < N; ++Q) {
      if ((P >> 1) == (Q >> 1))
        continue; // Unary or diagonal.
      if (entryIsInformative(P, Q))
        return true;
    }
  return false;
}

void Octagon::countConstraints(uint64_t &Additive,
                               uint64_t &Subtractive) const {
  for (int I = 0; I < static_cast<int>(Vars.size()); ++I) {
    for (int J = I + 1; J < static_cast<int>(Vars.size()); ++J) {
      // x_i - x_j carries information on either side?
      if (entryIsInformative(2 * I, 2 * J) ||
          entryIsInformative(2 * J, 2 * I))
        ++Subtractive;
      if (entryIsInformative(2 * I, 2 * J + 1) ||
          entryIsInformative(2 * I + 1, 2 * J))
        ++Additive;
    }
  }
}

std::string Octagon::toString() const {
  if (isBottom())
    return "_|_";
  std::string Out;
  for (int I = 0; I < static_cast<int>(Vars.size()); ++I) {
    Interval V = varInterval(I);
    Out += "v" + std::to_string(Vars[I]) + " in " + V.toString() + "; ";
    for (int J = I + 1; J < static_cast<int>(Vars.size()); ++J) {
      double Sub = at(2 * I, 2 * J);
      if (std::isfinite(Sub))
        Out += "v" + std::to_string(Vars[I]) + "-v" +
               std::to_string(Vars[J]) + "<=" + std::to_string(Sub) + "; ";
      double Add = at(2 * I, 2 * J + 1);
      if (std::isfinite(Add))
        Out += "v" + std::to_string(Vars[I]) + "+v" +
               std::to_string(Vars[J]) + "<=" + std::to_string(Add) + "; ";
    }
  }
  return Out;
}
