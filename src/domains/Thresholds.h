//===- domains/Thresholds.h - Widening thresholds ----------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threshold set T of Sect. 7.1.2: "in practice we have chosen T to be
/// (+/- alpha * lambda^k) for 0 <= k <= N", always containing -inf and +inf.
/// The widening with thresholds jumps an unstable bound to the next
/// threshold instead of straight to infinity, which is what lets counter
/// and accumulator variables stabilize below their physical limit.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_THRESHOLDS_H
#define ASTRAL_DOMAINS_THRESHOLDS_H

#include <vector>

namespace astral {

class Thresholds {
public:
  /// Builds the paper's geometric ladder {0, +/-Alpha*Lambda^k : 0<=k<=N}
  /// plus +/-inf.
  static Thresholds geometric(double Alpha = 1.0, double Lambda = 10.0,
                              unsigned N = 40);
  /// Builds from explicit user-supplied values (symmetrized, 0 and
  /// infinities added) — the end-user parametrization of Sect. 3.2.
  static Thresholds fromValues(const std::vector<double> &Values);

  /// Smallest threshold >= v.
  double nextAbove(double V) const;
  /// Largest threshold <= v.
  double nextBelow(double V) const;

  const std::vector<double> &values() const { return Sorted; }

  /// Relative slack of the floating iteration perturbation (Sect. 7.1.4):
  /// a bound that grows by at most eps*|bound| is inflated in place instead
  /// of jumping to the next threshold, so abstract rounding noise cannot
  /// escalate the widening. 0 disables the perturbation.
  double eps() const { return Eps; }
  void setEps(double E) { Eps = E; }

private:
  std::vector<double> Sorted; ///< Ascending, includes +/-inf.
  double Eps = 0.0;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_THRESHOLDS_H
