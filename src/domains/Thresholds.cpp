//===- domains/Thresholds.cpp - Widening thresholds ------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/Thresholds.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace astral;

Thresholds Thresholds::geometric(double Alpha, double Lambda, unsigned N) {
  std::vector<double> V;
  V.push_back(0.0);
  double X = Alpha;
  for (unsigned K = 0; K <= N; ++K) {
    V.push_back(X);
    V.push_back(-X);
    X *= Lambda;
    if (!std::isfinite(X))
      break;
  }
  return fromValues(V);
}

Thresholds Thresholds::fromValues(const std::vector<double> &Values) {
  Thresholds T;
  T.Sorted = Values;
  for (double V : Values)
    T.Sorted.push_back(-V);
  T.Sorted.push_back(0.0);
  T.Sorted.push_back(-std::numeric_limits<double>::infinity());
  T.Sorted.push_back(std::numeric_limits<double>::infinity());
  std::sort(T.Sorted.begin(), T.Sorted.end());
  T.Sorted.erase(std::unique(T.Sorted.begin(), T.Sorted.end()),
                 T.Sorted.end());
  return T;
}

double Thresholds::nextAbove(double V) const {
  auto It = std::lower_bound(Sorted.begin(), Sorted.end(), V);
  return It == Sorted.end() ? std::numeric_limits<double>::infinity() : *It;
}

double Thresholds::nextBelow(double V) const {
  auto It = std::upper_bound(Sorted.begin(), Sorted.end(), V);
  if (It == Sorted.begin())
    return -std::numeric_limits<double>::infinity();
  return *(It - 1);
}
