//===- domains/Ellipsoid.cpp - Ellipsoid abstract domain --------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/Ellipsoid.h"

#include "domains/Thresholds.h"

#include <cstdio>

using namespace astral;
using namespace astral::rounded;

double FilterParams::minInvariantK(double TM) const {
  double Denominator = subDown(1.0, sqrtUp(B));
  if (Denominator <= 0)
    return INFINITY;
  double Ratio = divUp(TM, Denominator);
  return mulUp(Ratio, Ratio);
}

Ellipsoid Ellipsoid::widen(const Ellipsoid &O, const Thresholds &T) const {
  if (isBottom())
    return O;
  if (O.isBottom())
    return *this;
  if (O.K <= K)
    return *this;
  return Ellipsoid{T.nextAbove(O.K)};
}

Ellipsoid Ellipsoid::afterFilterStep(const FilterParams &P, double TM) const {
  if (isBottom())
    return bottom();
  if (isTop() || !P.stable() || !std::isfinite(TM))
    return top();
  // In exact arithmetic: X'^2 - a X' X + b X^2 <= (sqrt(b k) + tM)^2.
  // With rounding, the sqrt(b) factor is inflated by
  //   eps_f = 4 f (|a| sqrt(b) + b) / sqrt(4b - a^2)
  // and tM by (1+f) (Sect. 6.2.3, delta(k)).
  double SqrtB = sqrtUp(P.B);
  double Disc = subDown(mulDown(4.0, P.B), mulUp(P.A, P.A));
  if (Disc <= 0)
    return top();
  double EpsF = divUp(mulUp(4.0 * P.F,
                            addUp(mulUp(std::fabs(P.A), SqrtB), P.B)),
                      sqrtDown(Disc));
  double Factor = addUp(SqrtB, EpsF);
  double Root = mulUp(Factor, sqrtUp(K));
  double TErr = mulUp(addUp(1.0, P.F), TM);
  double Sum = addUp(Root, TErr);
  return Ellipsoid{mulUp(Sum, Sum)};
}

double Ellipsoid::boundX(const FilterParams &P) const {
  if (isBottom())
    return 0.0;
  if (isTop() || !P.stable())
    return INFINITY;
  double Disc = subDown(mulDown(4.0, P.B), mulUp(P.A, P.A));
  if (Disc <= 0)
    return INFINITY;
  // |X| <= 2 sqrt(b k / (4b - a^2)).
  return mulUp(2.0, sqrtUp(divUp(mulUp(P.B, K), Disc)));
}

Ellipsoid Ellipsoid::reduceFromIntervals(const FilterParams &P,
                                         const Interval &X,
                                         const Interval &Y,
                                         bool Equal) const {
  if (isBottom() || X.isBottom() || Y.isBottom())
    return *this;
  if (!X.isFinite() || !Y.isFinite())
    return *this;
  double Candidate;
  if (Equal) {
    // X == Y: the quadratic form is (1 - a + b) X^2.
    double Coef = addUp(subUp(1.0, P.A), P.B);
    double M = X.magnitude();
    Candidate = mulUp(std::max(Coef, 0.0), mulUp(M, M));
  } else {
    // Sup over the box of X^2 - a X Y + b Y^2 (upward rounding).
    double MX = X.magnitude(), MY = Y.magnitude();
    double Q1 = mulUp(MX, MX);
    double Q2 = mulUp(std::fabs(P.A), mulUp(MX, MY));
    double Q3 = mulUp(P.B, mulUp(MY, MY));
    Candidate = addUp(addUp(Q1, Q2), Q3);
  }
  return Ellipsoid{std::min(K, Candidate)};
}

double EllipsoidState::get(CellId X, CellId Y, const FilterParams &P) const {
  auto It = K.find({X, Y});
  if (It != K.end())
    return It->second;
  auto Swapped = K.find({Y, X});
  if (Swapped == K.end() || !std::isfinite(Swapped->second) ||
      Swapped->second < 0 || !P.stable())
    return INFINITY;
  // (Y, X) -> k bounds Y^2 - a*Y*X + b*X^2 <= k, i.e. Y in the unit role
  // and X in the b role. Box bounds of that ellipse (Prop. 1 geometry):
  //   |Y| <= 2 sqrt(b*k / D),  |X| <= 2 sqrt(k / D),  D = 4b - a^2,
  // then the (X, Y)-oriented form is bounded over the box.
  double Kv = Swapped->second;
  double Disc = rounded::subDown(rounded::mulDown(4.0, P.B),
                                 rounded::mulUp(P.A, P.A));
  if (Disc <= 0)
    return INFINITY;
  double MaxY =
      rounded::mulUp(2.0, rounded::sqrtUp(rounded::divUp(
                              rounded::mulUp(P.B, Kv), Disc)));
  double MaxX = rounded::mulUp(2.0, rounded::sqrtUp(rounded::divUp(Kv, Disc)));
  Ellipsoid Derived = Ellipsoid::top().reduceFromIntervals(
      P, Interval(-MaxX, MaxX), Interval(-MaxY, MaxY), /*Equal=*/false);
  return Derived.K;
}

std::string Ellipsoid::toString() const {
  if (isBottom())
    return "_|_";
  if (isTop())
    return "T";
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "k<=%.9g", K);
  return Buf;
}
