//===- domains/Clocked.h - Clocked abstract domain ---------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The clocked abstract domain of Sect. 6.2.1: a value is abstracted by a
/// triple (v, v-, v+) of intervals with the meaning
///     x in gamma(v),  x - clock in gamma(v-),  x + clock in gamma(v+),
/// where `clock` is the hidden variable counting synchronous ticks, bounded
/// by the maximal continuous operating time of the system. Event counters
/// incremented at most once per tick keep a finite x - clock bound even when
/// plain interval widening would lose them; the reduction
///     v  ∩  (v- + clock)  ∩  (v+ - clock)
/// then bounds the counter by the clock bound.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_CLOCKED_H
#define ASTRAL_DOMAINS_CLOCKED_H

#include "domains/Interval.h"

namespace astral {

class Thresholds;

struct Clocked {
  Interval MinusClk = Interval::top(); ///< x - clock.
  Interval PlusClk = Interval::top();  ///< x + clock.

  static Clocked top() { return Clocked(); }
  static Clocked bottom() {
    return Clocked{Interval::bottom(), Interval::bottom()};
  }

  bool isTop() const { return MinusClk.isTop() && PlusClk.isTop(); }

  bool operator==(const Clocked &O) const {
    return MinusClk == O.MinusClk && PlusClk == O.PlusClk;
  }

  bool leq(const Clocked &O) const {
    return MinusClk.leq(O.MinusClk) && PlusClk.leq(O.PlusClk);
  }
  Clocked join(const Clocked &O) const {
    return Clocked{MinusClk.join(O.MinusClk), PlusClk.join(O.PlusClk)};
  }
  Clocked meet(const Clocked &O) const {
    return Clocked{MinusClk.meet(O.MinusClk), PlusClk.meet(O.PlusClk)};
  }
  /// Threshold widening; the offsets are integer-valued quantities, so the
  /// float F-hat slack never applies (it would ratchet with the integral
  /// rounding of shifted()/afterTick()).
  Clocked widen(const Clocked &O, const Thresholds &T,
                bool WithThresholds = true) const {
    if (!WithThresholds)
      return Clocked{MinusClk.widen(O.MinusClk), PlusClk.widen(O.PlusClk)};
    return Clocked{MinusClk.widen(O.MinusClk, T, /*AllowSlack=*/false),
                   PlusClk.widen(O.PlusClk, T, /*AllowSlack=*/false)};
  }
  Clocked narrow(const Clocked &O) const {
    return Clocked{MinusClk.narrow(O.MinusClk), PlusClk.narrow(O.PlusClk)};
  }

  /// Offsets after x := x + [a, b] (integer semantics).
  Clocked shifted(const Interval &Delta) const {
    return Clocked{Interval::iadd(MinusClk, Delta),
                   Interval::iadd(PlusClk, Delta)};
  }

  /// Triple for a freshly assigned unrelated value v: x - clock in
  /// v - clockItv, x + clock in v + clockItv.
  static Clocked fromValue(const Interval &V, const Interval &ClockItv) {
    return Clocked{Interval::isub(V, ClockItv), Interval::iadd(V, ClockItv)};
  }

  /// On a clock tick, clock increases by one: x - clock decreases by one,
  /// x + clock increases by one.
  Clocked afterTick() const {
    return Clocked{Interval::isub(MinusClk, Interval::point(1)),
                   Interval::iadd(PlusClk, Interval::point(1))};
  }

  /// The value interval implied by the offsets and the clock interval.
  Interval reduceValue(const Interval &V, const Interval &ClockItv) const {
    Interval R = V;
    R = R.meet(Interval::iadd(MinusClk, ClockItv));
    R = R.meet(Interval::isub(PlusClk, ClockItv));
    // An empty meet here means the offsets were inconsistent with the value
    // interval, which only happens transiently; keep V (sound).
    return R.isBottom() ? V : R;
  }
};

} // namespace astral

#endif // ASTRAL_DOMAINS_CLOCKED_H
