//===- domains/Interval.h - Interval abstract domain -------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval abstract domain of Sect. 6.2.1, for both integer and
/// floating-point values, with directed rounding on float operations.
///
/// Representation: [Lo, Hi] over doubles; bottom is canonically
/// [+inf, -inf]. Bounds may transiently be infinite while evaluating an
/// expression; the assignment transfer then checks the result against the
/// machine type's range (raising overflow alarms in checking mode) and clamps
/// to the "non-erroneous" values, following Sect. 5.3: "the analysis goes on
/// with the non-erroneous concrete results (overflowing integers are wiped
/// out and not considered modulo)". Consequently stored abstract values never
/// contain infinities or NaNs.
///
/// Integer intervals keep integral bounds; all int32 (and smaller) values are
/// exact in a double. For 64-bit integers the conversion of type bounds
/// rounds outward, which is sound.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_INTERVAL_H
#define ASTRAL_DOMAINS_INTERVAL_H

#include "support/RoundedArith.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace astral {

class Thresholds;

struct Interval {
  double Lo = std::numeric_limits<double>::infinity();
  double Hi = -std::numeric_limits<double>::infinity();

  constexpr Interval() = default; // Bottom.
  constexpr Interval(double L, double H) : Lo(L), Hi(H) {}

  static constexpr Interval bottom() { return Interval(); }
  static constexpr Interval top() {
    return Interval(-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity());
  }
  static constexpr Interval point(double V) { return Interval(V, V); }

  bool isBottom() const { return Lo > Hi; }
  bool isTop() const { return Lo == -INFINITY && Hi == INFINITY; }
  bool isPoint() const { return Lo == Hi; }
  bool isFinite() const { return !isBottom() && std::isfinite(Lo) &&
                                 std::isfinite(Hi); }
  bool contains(double V) const { return !isBottom() && Lo <= V && V <= Hi; }
  bool containsZero() const { return contains(0.0); }
  /// Width of the interval (inf if unbounded; 0 for points and bottom).
  double width() const { return isBottom() ? 0.0 : Hi - Lo; }
  /// Largest magnitude contained.
  double magnitude() const {
    return isBottom() ? 0.0 : std::max(std::fabs(Lo), std::fabs(Hi));
  }

  bool operator==(const Interval &O) const {
    if (isBottom() && O.isBottom())
      return true;
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  /// Abstract inclusion.
  bool leq(const Interval &O) const {
    if (isBottom())
      return true;
    if (O.isBottom())
      return false;
    return O.Lo <= Lo && Hi <= O.Hi;
  }

  Interval join(const Interval &O) const {
    if (isBottom())
      return O;
    if (O.isBottom())
      return *this;
    return Interval(std::min(Lo, O.Lo), std::max(Hi, O.Hi));
  }
  Interval meet(const Interval &O) const {
    if (isBottom() || O.isBottom())
      return bottom();
    Interval R(std::max(Lo, O.Lo), std::min(Hi, O.Hi));
    return R.isBottom() ? bottom() : R;
  }

  /// Plain widening (jump to infinity on unstable bounds) [CC77].
  Interval widen(const Interval &Next) const;
  /// Widening with thresholds (Sect. 7.1.2). \p AllowSlack enables the
  /// F-hat in-place inflation of Sect. 7.1.4 — float cells only; integer
  /// quantities (counters, clock offsets) must not use it, or the integral
  /// rounding of their transfer functions ratchets the bound forever.
  Interval widen(const Interval &Next, const Thresholds &T,
                 bool AllowSlack = false) const;
  /// Narrowing: refine infinite/loose bounds from Next [CC77].
  Interval narrow(const Interval &Next) const;

  /// Clamps to [lo, hi] (machine-range wipe-out after checks).
  Interval clamp(double L, double H) const {
    return meet(Interval(L, H));
  }

  // -- Guard refinements -----------------------------------------------
  /// this ∩ {x | x <= c}.
  Interval meetLe(double C) const { return meet(Interval(-INFINITY, C)); }
  Interval meetGe(double C) const { return meet(Interval(C, INFINITY)); }
  /// Strict versions; \p IsInt sharpens x < c to x <= c-1.
  Interval meetLt(double C, bool IsInt) const {
    return meetLe(IsInt ? C - 1
                        : rounded::nudgeDown(C));
  }
  Interval meetGt(double C, bool IsInt) const {
    return meetGe(IsInt ? C + 1
                        : rounded::nudgeUp(C));
  }
  /// this ∩ {x | x != c}: only sharpens when c is an endpoint of an integer
  /// interval.
  Interval meetNe(double C, bool IsInt) const;

  // -- Float arithmetic (directed rounding, Sect. 6.2.1) ----------------
  static Interval fadd(const Interval &A, const Interval &B);
  static Interval fsub(const Interval &A, const Interval &B);
  static Interval fmul(const Interval &A, const Interval &B);
  /// Division; when B contains 0 the result covers both signed quotients of
  /// the nonzero parts (the zero divisor itself is an error, reported by the
  /// checker before this is used).
  static Interval fdiv(const Interval &A, const Interval &B);
  static Interval fneg(const Interval &A) {
    if (A.isBottom())
      return bottom();
    return Interval(-A.Hi, -A.Lo);
  }

  // -- Integer arithmetic (exact; bounds stay integral) ------------------
  static Interval iadd(const Interval &A, const Interval &B);
  static Interval isub(const Interval &A, const Interval &B);
  static Interval imul(const Interval &A, const Interval &B);
  /// C truncated division (divisor zero excluded by caller).
  static Interval idiv(const Interval &A, const Interval &B);
  /// C remainder.
  static Interval irem(const Interval &A, const Interval &B);
  static Interval ishl(const Interval &A, const Interval &B);
  static Interval ishr(const Interval &A, const Interval &B);
  /// Bitwise ops: precise on points, range-approximated otherwise.
  static Interval iand(const Interval &A, const Interval &B);
  static Interval ior(const Interval &A, const Interval &B);
  static Interval ixor(const Interval &A, const Interval &B);
  static Interval ineg(const Interval &A) { return fneg(A); }
  static Interval ibitnot(const Interval &A);

  std::string toString() const;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_INTERVAL_H
