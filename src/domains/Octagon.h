//===- domains/Octagon.h - Octagon abstract domain ---------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The octagon abstract domain of Sect. 6.2.2 (Miné, "The octagon abstract
/// domain", WCRE 2001): conjunctions of constraints +/-x +/-y <= c over a
/// small pack of variables, O(k^3) time / O(k^2) space in the pack size.
///
/// Following the paper's two-step recipe for floating point, the domain
/// itself is sound for *real-valued* variables; rounding is accounted for
/// before the octagon sees an expression, by the linearizer (Sect. 6.3).
/// Internally bounds are doubles and every internal addition rounds up,
/// which keeps the abstract operations sound despite the float
/// representation (the second half of the recipe).
///
/// Encoding (standard DBM over 2k nodes): node 2i is +v_i, node 2i+1 is
/// -v_i, and M[p][q] is an upper bound on x_p - x_q. Hence
///   v_i - v_j <= c  ->  M[2i][2j]   = c
///   v_i + v_j <= c  ->  M[2i][2j+1] = c
///  -v_i - v_j <= c  ->  M[2i+1][2j] = c
///   v_i <= c        ->  M[2i][2i+1] = 2c
///   v_i >= c        ->  M[2i+1][2i] = -2c
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_OCTAGON_H
#define ASTRAL_DOMAINS_OCTAGON_H

#include "domains/Interval.h"
#include "domains/LinearForm.h"
#include "support/MemoryTracker.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace astral {

class Thresholds;

class Octagon {
public:
  /// Creates the top octagon over \p Cells (the pack, <= 16 variables).
  explicit Octagon(std::vector<CellId> Cells);
  ~Octagon();
  Octagon(const Octagon &O);
  Octagon &operator=(const Octagon &) = delete;

  const std::vector<CellId> &cells() const { return Vars; }
  size_t size() const { return Vars.size(); }
  /// Index of \p Cell in the pack, or -1.
  int indexOf(CellId Cell) const;

  bool isBottom() const;

  /// Strong closure (Floyd-Warshall + strengthening); idempotent. Returns
  /// false when the octagon is empty.
  bool close();
  bool isClosed() const { return Closed; }

  /// Number of closures performed across all octagons (for the statistics
  /// and bench E7).
  static uint64_t closureCount();

  // -- Lattice ----------------------------------------------------------
  bool leq(const Octagon &O) const;    ///< Requires *this closed.
  void joinWith(const Octagon &O);     ///< Requires both closed.
  void meetWith(const Octagon &O);
  void widenWith(const Octagon &O, const Thresholds &T,
                 bool WithThresholds = true);
  void narrowWith(const Octagon &O);
  bool equal(const Octagon &O) const;

  // -- Transfer functions ------------------------------------------------
  /// Removes all constraints on \p Idx (pack index).
  void forget(int Idx);
  /// v_idx := form, where form is a linear form over cells; pack-external
  /// cells contribute through \p CellRange (their current interval). Exact
  /// for the octagonal shapes +/-w + [a,b]; otherwise falls back to
  /// interval-bounded constraints against every pack variable (the
  /// "smart" transfer of Sect. 6.2.2).
  void assign(int Idx, const LinearForm &Form,
              const std::function<Interval(CellId)> &CellRange);
  /// Refines by the constraint (form <= 0). Only octagonal shapes refine;
  /// others are ignored (sound).
  void guardLe(const LinearForm &Form,
               const std::function<Interval(CellId)> &CellRange);

  // -- Reductions --------------------------------------------------------
  /// Interval of v_idx implied by the (closed) octagon.
  Interval varInterval(int Idx) const;
  /// Tightens v_idx with an externally known interval.
  void meetVarInterval(int Idx, const Interval &I);
  /// Upper bound of a linear form over the (closed) octagon, using pairwise
  /// constraints for unit-coefficient term pairs and unary bounds plus
  /// \p CellRange for the rest.
  double formUpperBound(const LinearForm &Form,
                        const std::function<Interval(CellId)> &CellRange)
      const;

  /// True when some binary (two-variable) constraint is strictly tighter
  /// than the unary bounds imply — used by the pack-usefulness optimization
  /// of Sect. 7.2.2.
  bool hasRelationalInfo() const;
  /// Whether one DBM entry carries information beyond the unary bounds.
  bool entryIsInformative(int P, int Q) const;
  /// Counts finite additive (x+y) and subtractive (x-y) constraints, for the
  /// invariant census (Sect. 9.4.1).
  void countConstraints(uint64_t &Additive, uint64_t &Subtractive) const;

  std::string toString() const;

  size_t byteSize() const { return M.size() * sizeof(double); }

private:
  double &at(int P, int Q) { return M[static_cast<size_t>(P) * N + Q]; }
  double at(int P, int Q) const { return M[static_cast<size_t>(P) * N + Q]; }
  void setBound(int P, int Q, double C) {
    double &Slot = at(P, Q);
    if (C < Slot) {
      Slot = C;
      Closed = false;
    }
  }
  /// v := v + [a, b] (in-place shift, no closure lost).
  void shiftVar(int Idx, const Interval &Delta);

  std::vector<CellId> Vars;
  int N; ///< 2 * Vars.size().
  std::vector<double> M;
  bool Closed = false;
  bool Empty = false;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_OCTAGON_H
