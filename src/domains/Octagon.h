//===- domains/Octagon.h - Octagon abstract domain ---------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The octagon abstract domain of Sect. 6.2.2 (Miné, "The octagon abstract
/// domain", WCRE 2001): conjunctions of constraints +/-x +/-y <= c over a
/// small pack of variables, O(k^3) time / O(k^2) space in the pack size.
///
/// Following the paper's two-step recipe for floating point, the domain
/// itself is sound for *real-valued* variables; rounding is accounted for
/// before the octagon sees an expression, by the linearizer (Sect. 6.3).
/// Internally bounds are doubles and every internal addition rounds up,
/// which keeps the abstract operations sound despite the float
/// representation (the second half of the recipe).
///
/// Encoding (standard DBM over 2k nodes): node 2i is +v_i, node 2i+1 is
/// -v_i, and M[p][q] is an upper bound on x_p - x_q. Hence
///   v_i - v_j <= c  ->  M[2i][2j]   = c
///   v_i + v_j <= c  ->  M[2i][2j+1] = c
///  -v_i - v_j <= c  ->  M[2i+1][2j] = c
///   v_i <= c        ->  M[2i][2i+1] = 2c
///   v_i >= c        ->  M[2i+1][2i] = -2c
///
/// Closure discipline: every tightening records the touched variables in a
/// dirty-set, and close() — the single cached entry point every
/// closure-requiring consumer goes through — restores strong closure either
/// by the full Floyd-Warshall sweep (O((2k)^3)) or, in incremental mode, by
/// propagating shortest paths only through the dirty rows/columns
/// (O(d * (2k)^2) for d dirty variables, Miné's incremental closure
/// generalized to a dirty-set). Both algorithms compute the same canonical
/// strong closure; which one ran is metered separately so a run's
/// full-sweep count measures the discipline, not the demand.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_DOMAINS_OCTAGON_H
#define ASTRAL_DOMAINS_OCTAGON_H

#include "domains/Interval.h"
#include "domains/LinearForm.h"
#include "support/Hash128.h"
#include "support/MemoryTracker.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace astral {

class Thresholds;

/// How Octagon::close() restores strong closure after tightenings: a full
/// Floyd-Warshall sweep every time (the seed behavior, kept for
/// differential benching via --octagon-closure=full), or incrementally
/// through the dirty rows/columns when only a few variables were touched.
enum class OctClosureMode : uint8_t {
  Full,
  Incremental,
};

/// Per-session closure work meter, shared by every octagon of one analysis
/// (the DomainRegistry hands one sink to all the states it creates, so
/// batch runs no longer read each other's counts through a process-wide
/// atomic). Thread-safe: parallel lattice stages close pack copies
/// concurrently.
struct OctagonClosureStats {
  std::atomic<uint64_t> Full{0};        ///< Full Floyd-Warshall sweeps.
  std::atomic<uint64_t> Incremental{0}; ///< Dirty-row/column propagations.

  uint64_t full() const { return Full.load(std::memory_order_relaxed); }
  uint64_t incremental() const {
    return Incremental.load(std::memory_order_relaxed);
  }
  uint64_t total() const { return full() + incremental(); }
};

class Octagon {
public:
  /// Creates the top octagon over \p Cells (the pack, <= 16 variables).
  /// \p Mode picks the closure algorithm; \p Stats, when non-null, meters
  /// every closure this octagon (and its copies) performs.
  explicit Octagon(std::vector<CellId> Cells,
                   OctClosureMode Mode = OctClosureMode::Incremental,
                   std::shared_ptr<OctagonClosureStats> Stats = nullptr);
  ~Octagon();
  Octagon(const Octagon &O);
  Octagon &operator=(const Octagon &) = delete;

  const std::vector<CellId> &cells() const { return Vars; }
  size_t size() const { return Vars.size(); }
  /// Index of \p Cell in the pack, or -1. Binary search over a sorted
  /// (cell, index) table — this runs once per transfer per pack.
  int indexOf(CellId Cell) const;

  bool isBottom() const;

  /// Strong closure (shortest-path propagation + strengthening); idempotent
  /// and cached — the one entry point consumers demand closure through.
  /// In incremental mode, propagates only through the rows/columns of the
  /// variables dirtied since the last closure. Returns false when the
  /// octagon is empty.
  bool close();
  bool isClosed() const { return Closed; }

  // -- Lattice ----------------------------------------------------------
  bool leq(const Octagon &O) const;    ///< Requires *this closed.
  void joinWith(const Octagon &O);     ///< Requires both closed.
  void meetWith(const Octagon &O);
  void widenWith(const Octagon &O, const Thresholds &T,
                 bool WithThresholds = true);
  void narrowWith(const Octagon &O);
  /// Representation-insensitive equality: a closed and a non-closed DBM of
  /// the same set compare equal (both sides are normalized via closure when
  /// the raw matrices differ).
  bool equal(const Octagon &O) const;

  // -- Transfer functions ------------------------------------------------
  /// Removes all constraints on \p Idx (pack index). Indirect constraints
  /// are preserved first: free when the DBM is closed, and otherwise by the
  /// incremental single-variable closure that only propagates paths
  /// through the dirty (in particular, the dropped) rows/columns.
  void forget(int Idx);
  /// v_idx := form, where form is a linear form over cells; pack-external
  /// cells contribute through \p CellRange (their current interval). Exact
  /// for the octagonal shapes +/-w + [a,b]; otherwise falls back to
  /// interval-bounded constraints against every pack variable (the
  /// "smart" transfer of Sect. 6.2.2).
  void assign(int Idx, const LinearForm &Form,
              const std::function<Interval(CellId)> &CellRange);
  /// Refines by the constraint (form <= 0). Only octagonal shapes refine;
  /// others are ignored (sound).
  void guardLe(const LinearForm &Form,
               const std::function<Interval(CellId)> &CellRange);

  // -- Reductions --------------------------------------------------------
  /// Interval of v_idx implied by the (closed) octagon.
  Interval varInterval(int Idx) const;
  /// Tightens v_idx with an externally known interval.
  void meetVarInterval(int Idx, const Interval &I);
  /// Upper bound of a linear form over the (closed) octagon, using pairwise
  /// constraints for unit-coefficient term pairs and unary bounds plus
  /// \p CellRange for the rest.
  double formUpperBound(const LinearForm &Form,
                        const std::function<Interval(CellId)> &CellRange)
      const;

  /// True when some binary (two-variable) constraint is strictly tighter
  /// than the unary bounds imply — used by the pack-usefulness optimization
  /// of Sect. 7.2.2.
  bool hasRelationalInfo() const;
  /// Whether one DBM entry carries information beyond the unary bounds.
  bool entryIsInformative(int P, int Q) const;
  /// Counts finite additive (x+y) and subtractive (x-y) constraints, for the
  /// invariant census (Sect. 9.4.1).
  void countConstraints(uint64_t &Additive, uint64_t &Subtractive) const;

  std::string toString() const;

  size_t byteSize() const { return M.size() * sizeof(double); }

  /// Feeds the exact DBM representation (pack cells, matrix bytes, closure
  /// and dirty-set bookkeeping, emptiness) into \p H — the call-summary
  /// memo's content key. Representation-sensitive by design: a closed and
  /// an unclosed DBM of the same octagon hash differently, which only
  /// splits memo keys (a spurious miss), never corrupts a hit.
  void hashRepr(support::Hash128 &H) const {
    H.u64(Vars.size());
    for (CellId C : Vars)
      H.u32(C);
    for (double D : M)
      H.f64(D);
    H.u32(PivotDirty);
    H.u32(StarDirty);
    H.boolean(Closed);
    H.boolean(Empty);
  }

private:
  double &at(int P, int Q) { return M[static_cast<size_t>(P) * N + Q]; }
  double at(int P, int Q) const { return M[static_cast<size_t>(P) * N + Q]; }
  void setBound(int P, int Q, double C) {
    double &Slot = at(P, Q);
    if (C < Slot) {
      Slot = C;
      markDirty(P, Q);
    }
  }
  /// Records that the entry (P, Q) was tightened: both endpoint variables
  /// go into the pivot dirty-set, so close() can restrict shortest-path
  /// propagation to their rows/columns.
  void markDirty(int P, int Q) {
    PivotDirty |= (1u << (P >> 1)) | (1u << (Q >> 1));
    Closed = false;
  }
  /// Invalidates closure entirely (widening, arbitrary meets).
  void markAllDirty() {
    PivotDirty = allDirtyMask();
    StarDirty = 0;
    Closed = false;
  }
  uint32_t allDirtyMask() const {
    return (1u << Vars.size()) - 1u;
  }
  /// One Floyd-Warshall pivot: relaxes every (I, J) through node K.
  void propagateThrough(int K);
  /// One relaxation round of column \p C / row \p R against the rest of
  /// the matrix (min-plus product) — completes a star-dirty variable's
  /// row/column before its nodes are pivoted.
  void relaxColumn(int C);
  void relaxRow(int R);
  /// Strengthening + diagonal check shared by both closure algorithms;
  /// records the strengthening fan's vertex cover as the next closure's
  /// carried star-dirty work.
  bool finishClosure();
  /// v := v + [a, b] (in-place shift, no closure lost).
  void shiftVar(int Idx, const Interval &Delta);

  std::vector<CellId> Vars;
  /// (cell, pack index) sorted by cell id, for the indexOf binary search.
  std::vector<std::pair<CellId, int>> Lookup;
  int N; ///< 2 * Vars.size().
  std::vector<double> M;
  /// Variables whose rows/columns hold tightenings incident to them on
  /// *both* endpoints (guards, unary meets): restoring closure needs a
  /// Floyd-Warshall pivot at their two nodes.
  uint32_t PivotDirty = 0;
  /// Variables whose rows/columns hold star-shaped tightenings — incident
  /// to the variable on *at least one* endpoint (the smart assignment's
  /// rebuilt row/column, the strengthening fan of the previous closure):
  /// restoring closure needs a row/column relaxation plus the pivot.
  uint32_t StarDirty = 0;
  bool Closed = false;
  bool Empty = false;
  OctClosureMode Mode;
  std::shared_ptr<OctagonClosureStats> Stats;
};

} // namespace astral

#endif // ASTRAL_DOMAINS_OCTAGON_H
