//===- domains/Interval.cpp - Interval abstract domain ---------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/Interval.h"

#include "domains/Thresholds.h"

#include <cstdio>

using namespace astral;

Interval Interval::widen(const Interval &Next) const {
  if (isBottom())
    return Next;
  if (Next.isBottom())
    return *this;
  double L = Next.Lo < Lo ? -INFINITY : Lo;
  double H = Next.Hi > Hi ? INFINITY : Hi;
  return Interval(L, H);
}

Interval Interval::widen(const Interval &Next, const Thresholds &T,
                         bool AllowSlack) const {
  if (isBottom())
    return Next;
  if (Next.isBottom())
    return *this;
  // The F-hat perturbation (Sect. 7.1.4): growth within eps*|bound| is
  // absorbed by inflating the bound in place (sound: the result covers
  // Next), so rounding dribble at a stable threshold does not escalate.
  double Eps = AllowSlack ? T.eps() : 0.0;
  double L = Lo, H = Hi;
  if (Next.Hi > Hi) {
    double Slack = Eps * std::max(std::fabs(Hi), 1.0);
    H = (Eps > 0 && std::isfinite(Hi) && Next.Hi <= Hi + Slack)
            ? Hi + Slack
            : T.nextAbove(Next.Hi);
  }
  if (Next.Lo < Lo) {
    double Slack = Eps * std::max(std::fabs(Lo), 1.0);
    L = (Eps > 0 && std::isfinite(Lo) && Next.Lo >= Lo - Slack)
            ? Lo - Slack
            : T.nextBelow(Next.Lo);
  }
  return Interval(L, H);
}

Interval Interval::narrow(const Interval &Next) const {
  if (isBottom())
    return bottom();
  if (Next.isBottom())
    return *this;
  // Decreasing iteration: with widening *thresholds* the blown-up bounds
  // are finite, so the classical "refine infinities only" narrowing would
  // keep them; taking the meet refines every bound. Soundness: the caller
  // narrows a post-fixpoint X with Next = E0 |_| F(X), and both are upper
  // bounds of the concrete invariant, so their meet is too. Termination
  // comes from the fixed narrowing-iteration budget (Sect. 5.5).
  Interval R = meet(Next);
  return R.isBottom() ? *this : R;
}

Interval Interval::meetNe(double C, bool IsInt) const {
  if (isBottom())
    return bottom();
  if (!IsInt)
    return *this; // Removing one float point never shrinks an interval.
  Interval R = *this;
  if (R.Lo == C)
    R.Lo = C + 1;
  if (R.Hi == C)
    R.Hi = C - 1;
  return R.isBottom() ? bottom() : R;
}

//===----------------------------------------------------------------------===//
// Float arithmetic
//===----------------------------------------------------------------------===//

Interval Interval::fadd(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  double L = rounded::addDown(A.Lo, B.Lo);
  double H = rounded::addUp(A.Hi, B.Hi);
  // inf + -inf = NaN: means the result is unconstrained on that side.
  if (std::isnan(L))
    L = -INFINITY;
  if (std::isnan(H))
    H = INFINITY;
  return Interval(L, H);
}

Interval Interval::fsub(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  double L = rounded::subDown(A.Lo, B.Hi);
  double H = rounded::subUp(A.Hi, B.Lo);
  if (std::isnan(L))
    L = -INFINITY;
  if (std::isnan(H))
    H = INFINITY;
  return Interval(L, H);
}

Interval Interval::fmul(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  double Cands[4][2] = {{A.Lo, B.Lo}, {A.Lo, B.Hi}, {A.Hi, B.Lo},
                        {A.Hi, B.Hi}};
  double L = INFINITY, H = -INFINITY;
  for (auto &C : Cands) {
    double X = C[0], Y = C[1];
    // 0 * inf = NaN in IEEE but 0 mathematically (bounds are exact reals
    // here, infinity only encodes unboundedness).
    double Down, Up;
    if ((X == 0.0 && std::isinf(Y)) || (Y == 0.0 && std::isinf(X))) {
      Down = Up = 0.0;
    } else {
      Down = rounded::mulDown(X, Y);
      Up = rounded::mulUp(X, Y);
    }
    L = std::min(L, Down);
    H = std::max(H, Up);
  }
  return Interval(L, H);
}

Interval Interval::fdiv(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  // Split the divisor at zero; the zero divisor itself is the checker's
  // business.
  Interval Pos = B.meet(Interval(rounded::AbsErrMin, INFINITY));
  Interval Neg = B.meet(Interval(-INFINITY, -rounded::AbsErrMin));
  // If B is exactly [0,0] the division is always an error; return bottom so
  // the result constrains nothing.
  Interval R = bottom();
  for (const Interval *D : {&Pos, &Neg}) {
    if (D->isBottom())
      continue;
    double Cands[4][2] = {{A.Lo, D->Lo}, {A.Lo, D->Hi}, {A.Hi, D->Lo},
                          {A.Hi, D->Hi}};
    double L = INFINITY, H = -INFINITY;
    for (auto &C : Cands) {
      double X = C[0], Y = C[1];
      double Down, Up;
      if (std::isinf(X) && std::isinf(Y)) {
        Down = -INFINITY;
        Up = INFINITY;
      } else {
        Down = rounded::divDown(X, Y);
        Up = rounded::divUp(X, Y);
      }
      L = std::min(L, Down);
      H = std::max(H, Up);
    }
    R = R.join(Interval(L, H));
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Integer arithmetic
//===----------------------------------------------------------------------===//

// Integer bounds are integral doubles; int32 arithmetic is exact. Addition
// of two < 2^53 magnitudes stays exact; where exactness could be lost (only
// for 64-bit extremes) the directed rounding keeps the result sound.

Interval Interval::iadd(const Interval &A, const Interval &B) {
  Interval R = fadd(A, B);
  if (R.isBottom())
    return R;
  return Interval(std::floor(R.Lo), std::ceil(R.Hi));
}

Interval Interval::isub(const Interval &A, const Interval &B) {
  Interval R = fsub(A, B);
  if (R.isBottom())
    return R;
  return Interval(std::floor(R.Lo), std::ceil(R.Hi));
}

Interval Interval::imul(const Interval &A, const Interval &B) {
  Interval R = fmul(A, B);
  if (R.isBottom())
    return R;
  return Interval(std::floor(R.Lo), std::ceil(R.Hi));
}

Interval Interval::idiv(const Interval &A, const Interval &B) {
  Interval R = fdiv(A, B);
  if (R.isBottom())
    return R;
  // C division truncates toward zero.
  double L = R.Lo < 0 ? -std::floor(-R.Lo) : std::floor(R.Lo);
  double H = R.Hi < 0 ? -std::floor(-R.Hi) : std::floor(R.Hi);
  if (std::isinf(R.Lo))
    L = -INFINITY;
  if (std::isinf(R.Hi))
    H = INFINITY;
  return Interval(std::min(L, H), std::max(L, H)).join(
      // Truncation can reach 0 from either side when A spans small values.
      A.containsZero() ? Interval::point(0) : Interval::bottom());
}

Interval Interval::irem(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  // |a % b| < |b| and a % b has the sign of a (C99).
  double M = std::max(std::fabs(B.Lo), std::fabs(B.Hi));
  if (std::isinf(M))
    return A.Lo >= 0 ? Interval(0, INFINITY)
                     : (A.Hi <= 0 ? Interval(-INFINITY, 0) : top());
  double Bound = M - 1;
  double L = A.Lo >= 0 ? 0 : -Bound;
  double H = A.Hi <= 0 ? 0 : Bound;
  // A point % point is exact.
  if (A.isPoint() && B.isPoint() && B.Lo != 0 && std::isfinite(A.Lo)) {
    double Rm = std::fmod(A.Lo, B.Lo);
    return point(Rm);
  }
  return Interval(L, H);
}

Interval Interval::ishl(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  if (B.Lo < 0 || B.Hi > 63)
    return top(); // Invalid shifts are flagged by the checker.
  double Cands[4] = {A.Lo * std::exp2(B.Lo), A.Lo * std::exp2(B.Hi),
                     A.Hi * std::exp2(B.Lo), A.Hi * std::exp2(B.Hi)};
  double L = INFINITY, H = -INFINITY;
  for (double C : Cands) {
    L = std::min(L, C);
    H = std::max(H, C);
  }
  return Interval(std::floor(L), std::ceil(H));
}

Interval Interval::ishr(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  if (B.Lo < 0 || B.Hi > 63)
    return top();
  double Cands[4] = {A.Lo / std::exp2(B.Lo), A.Lo / std::exp2(B.Hi),
                     A.Hi / std::exp2(B.Lo), A.Hi / std::exp2(B.Hi)};
  double L = INFINITY, H = -INFINITY;
  for (double C : Cands) {
    L = std::min(L, std::floor(C));
    H = std::max(H, std::floor(C));
  }
  return Interval(L, H);
}

Interval Interval::iand(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  if (A.isPoint() && B.isPoint() && A.isFinite() && B.isFinite())
    return point(static_cast<double>(static_cast<int64_t>(A.Lo) &
                                     static_cast<int64_t>(B.Lo)));
  // For nonnegative operands, and is bounded by min of the maxima.
  if (A.Lo >= 0 && B.Lo >= 0)
    return Interval(0, std::min(A.Hi, B.Hi));
  return top();
}

Interval Interval::ior(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  if (A.isPoint() && B.isPoint() && A.isFinite() && B.isFinite())
    return point(static_cast<double>(static_cast<int64_t>(A.Lo) |
                                     static_cast<int64_t>(B.Lo)));
  if (A.Lo >= 0 && B.Lo >= 0 && A.isFinite() && B.isFinite()) {
    // or(a, b) < 2^ceil(log2(max+1)+1).
    double M = std::max(A.Hi, B.Hi);
    double Cap = std::exp2(std::ceil(std::log2(M + 1))) * 2 - 1;
    return Interval(0, Cap);
  }
  return top();
}

Interval Interval::ixor(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return bottom();
  if (A.isPoint() && B.isPoint() && A.isFinite() && B.isFinite())
    return point(static_cast<double>(static_cast<int64_t>(A.Lo) ^
                                     static_cast<int64_t>(B.Lo)));
  if (A.Lo >= 0 && B.Lo >= 0 && A.isFinite() && B.isFinite()) {
    double M = std::max(A.Hi, B.Hi);
    double Cap = std::exp2(std::ceil(std::log2(M + 1))) * 2 - 1;
    return Interval(0, Cap);
  }
  return top();
}

Interval Interval::ibitnot(const Interval &A) {
  if (A.isBottom())
    return bottom();
  // ~x = -x - 1.
  return isub(fneg(A), point(1));
}

std::string Interval::toString() const {
  if (isBottom())
    return "_|_";
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf), "[%.17g, %.17g]", Lo, Hi);
  return Buf;
}
