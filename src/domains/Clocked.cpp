//===- domains/Clocked.cpp - Clocked abstract domain ------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
// Header-only domain; this file anchors the translation unit.
//===----------------------------------------------------------------------===//

#include "domains/Clocked.h"

namespace astral {
// No out-of-line members.
} // namespace astral
