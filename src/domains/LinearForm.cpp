//===- domains/LinearForm.cpp - Interval linear forms ----------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "domains/LinearForm.h"

using namespace astral;

Interval LinearForm::coeff(CellId Cell) const {
  for (const auto &[C, Coef] : TermList)
    if (C == Cell)
      return Coef;
  return Interval::point(0);
}

void LinearForm::addError(double E) {
  if (E <= 0)
    return;
  ConstTerm = Interval::fadd(ConstTerm, Interval(-E, E));
}

void LinearForm::addConstant(Interval C) {
  ConstTerm = Interval::fadd(ConstTerm, C);
}

LinearForm LinearForm::add(const LinearForm &O) const {
  if (!IsValid || !O.IsValid)
    return invalid();
  LinearForm R;
  R.ConstTerm = Interval::fadd(ConstTerm, O.ConstTerm);
  size_t I = 0, J = 0;
  while (I < TermList.size() || J < O.TermList.size()) {
    if (J >= O.TermList.size() ||
        (I < TermList.size() && TermList[I].first < O.TermList[J].first)) {
      R.TermList.push_back(TermList[I++]);
    } else if (I >= TermList.size() ||
               O.TermList[J].first < TermList[I].first) {
      R.TermList.push_back(O.TermList[J++]);
    } else {
      Interval Sum = Interval::fadd(TermList[I].second, O.TermList[J].second);
      if (!(Sum == Interval::point(0)))
        R.TermList.push_back({TermList[I].first, Sum});
      ++I;
      ++J;
    }
  }
  return R;
}

LinearForm LinearForm::negate() const {
  if (!IsValid)
    return invalid();
  LinearForm R;
  R.ConstTerm = Interval::fneg(ConstTerm);
  for (const auto &[C, Coef] : TermList)
    R.TermList.push_back({C, Interval::fneg(Coef)});
  return R;
}

LinearForm LinearForm::sub(const LinearForm &O) const {
  return add(O.negate());
}

LinearForm LinearForm::scale(Interval C) const {
  if (!IsValid)
    return invalid();
  LinearForm R;
  R.ConstTerm = Interval::fmul(ConstTerm, C);
  for (const auto &[Cell, Coef] : TermList) {
    Interval NC = Interval::fmul(Coef, C);
    if (!(NC == Interval::point(0)))
      R.TermList.push_back({Cell, NC});
  }
  return R;
}

LinearForm LinearForm::without(CellId Cell, Interval *CoeffOut) const {
  LinearForm R;
  R.IsValid = IsValid;
  R.ConstTerm = ConstTerm;
  if (CoeffOut)
    *CoeffOut = Interval::point(0);
  for (const auto &[C, Coef] : TermList) {
    if (C == Cell) {
      if (CoeffOut)
        *CoeffOut = Coef;
      continue;
    }
    R.TermList.push_back({C, Coef});
  }
  return R;
}

LinearForm::OctShape LinearForm::octagonShape() const {
  OctShape S;
  S.NumVars = -1;
  if (!IsValid || TermList.size() > 2)
    return S;
  auto UnitSign = [](const Interval &C) -> int {
    if (C == Interval::point(1.0))
      return 1;
    if (C == Interval::point(-1.0))
      return -1;
    return 0;
  };
  S.C = ConstTerm;
  if (TermList.empty()) {
    S.NumVars = 0;
    return S;
  }
  int Sign1 = UnitSign(TermList[0].second);
  if (Sign1 == 0)
    return S;
  S.V1 = TermList[0].first;
  S.S1 = Sign1;
  if (TermList.size() == 1) {
    S.NumVars = 1;
    return S;
  }
  int Sign2 = UnitSign(TermList[1].second);
  if (Sign2 == 0)
    return S;
  S.V2 = TermList[1].first;
  S.S2 = Sign2;
  S.NumVars = 2;
  return S;
}
