//===- service/ArtifactCache.h - Content-hash artifact cache -----*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's artifact cache: two LRU maps keyed by the content-hash keys
/// of AnalysisSession (frontendCacheKey / packingCacheKey — SHA-256 over
/// the report schema version, file name, preprocessed source, headers, and
/// the option subset the phase depends on, as derived from the setOptions()
/// invalidation fingerprints). Values are the immutable shareable phase
/// artifacts; a hit hands shared ownership to a fresh session via
/// adoptFrontend/adoptPacking, so resubmitting an unchanged file skips the
/// frontend (and the pack construction) entirely while the per-session
/// mutable state (DomainRegistry, meters) is still rebuilt per request.
///
/// Keys embed the schema version, so a cache file of artifacts can never
/// outlive its build vintage — a bumped ReportSchemaVersion makes every old
/// key unreachable. Thread-safe; eviction is size-bounded LRU per map.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_ARTIFACTCACHE_H
#define ASTRAL_SERVICE_ARTIFACTCACHE_H

#include "analyzer/AnalysisSession.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace astral {
namespace service {

class ArtifactCache {
public:
  struct Stats {
    uint64_t FrontendHits = 0;
    uint64_t FrontendMisses = 0;
    uint64_t PackingHits = 0;
    uint64_t PackingMisses = 0;
    uint64_t Evictions = 0;
  };

  /// The layout + pack tables of one packingCacheKey. Stored together: the
  /// pack tables index into the layout's cells, so they only make sense as
  /// a pair.
  struct PackingArtifact {
    std::shared_ptr<const AnalysisSession::LayoutPhase> Layout;
    std::shared_ptr<const Packing> Packs;
  };

  explicit ArtifactCache(size_t MaxEntries = 64);

  /// Lookup bumps the entry to most-recent and counts a hit; a miss counts
  /// too (the request scheduler pairs every miss with a later store).
  std::shared_ptr<const AnalysisSession::FrontendPhase>
  lookupFrontend(const std::string &Key);
  std::optional<PackingArtifact> lookupPacking(const std::string &Key);

  void storeFrontend(const std::string &Key,
                     std::shared_ptr<const AnalysisSession::FrontendPhase> F);
  void storePacking(const std::string &Key, PackingArtifact P);

  Stats stats() const;
  size_t frontendEntries() const;
  size_t packingEntries() const;
  size_t maxEntries() const { return Max; }

private:
  /// One LRU map: Order front = most recent; entries point into Order.
  template <typename V> struct Shelf {
    std::list<std::string> Order;
    struct Entry {
      V Value;
      std::list<std::string>::iterator Where;
    };
    std::unordered_map<std::string, Entry> Map;

    V *touch(const std::string &Key) {
      auto It = Map.find(Key);
      if (It == Map.end())
        return nullptr;
      Order.splice(Order.begin(), Order, It->second.Where);
      return &It->second.Value;
    }
    /// Inserts or refreshes; returns true when an old entry was evicted.
    bool put(const std::string &Key, V Value, size_t Max) {
      auto It = Map.find(Key);
      if (It != Map.end()) {
        It->second.Value = std::move(Value);
        Order.splice(Order.begin(), Order, It->second.Where);
        return false;
      }
      Order.push_front(Key);
      Map.emplace(Key, Entry{std::move(Value), Order.begin()});
      if (Map.size() <= Max)
        return false;
      Map.erase(Order.back());
      Order.pop_back();
      return true;
    }
  };

  const size_t Max;
  mutable std::mutex Mu;
  Shelf<std::shared_ptr<const AnalysisSession::FrontendPhase>> Frontends;
  Shelf<PackingArtifact> Packings;
  Stats Counters;
};

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_ARTIFACTCACHE_H
