//===- service/RequestQueue.h - Shared-pool request scheduling ---*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's analysis scheduler. Connection threads submit jobs (one per
/// analyze request, already reduced to AnalysisInputs); a single dispatcher
/// thread drains the highest-priority pending jobs — FIFO by arrival among
/// equals, so the default priority 0 degenerates to the old drain-everything
/// behavior — flattens them into per-file items, and
/// runs the items over ONE shared ThreadPoolScheduler — the same
/// coarse-grained whole-file dispatch AnalysisSession::analyzeBatch uses,
/// extended across concurrent requests. Each item is its own
/// AnalysisSession (per-session registry and meters), optionally seeded
/// from the ArtifactCache; the session's finer parallel grains run inline
/// on its worker, so one pool serves every granularity without
/// oversubscription.
///
/// Cache accounting is per-job: the outcome carries the hit/miss deltas of
/// exactly this request's items, which is what lets a client prove "the
/// resubmission skipped the frontend" without racing other clients.
///
/// Priorities are preemption at drain granularity, not mid-run: an editor's
/// priority-10 single-file request submitted while a priority-0 CI batch is
/// running waits for the in-flight drain, then jumps every still-queued
/// batch. Starvation is the operator's tradeoff to make — the daemon never
/// ages priorities up.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_REQUESTQUEUE_H
#define ASTRAL_SERVICE_REQUESTQUEUE_H

#include "analyzer/AnalysisSession.h"
#include "analyzer/Scheduler.h"
#include "service/ArtifactCache.h"

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace astral {
namespace service {

class RequestQueue {
public:
  struct Outcome {
    std::vector<AnalysisResult> Results; ///< In input order.
    uint64_t FrontendHits = 0;
    uint64_t FrontendMisses = 0;
    uint64_t PackingHits = 0;
    uint64_t PackingMisses = 0;
    uint64_t ServeOrder = 0; ///< Position in the daemon's global serve
                             ///< sequence (0-based) — the observable the
                             ///< priority tests pin.
  };

  RequestQueue(std::shared_ptr<Scheduler> Pool, ArtifactCache &Cache);
  ~RequestQueue();

  RequestQueue(const RequestQueue &) = delete;
  RequestQueue &operator=(const RequestQueue &) = delete;

  /// Enqueues one request's inputs; the future resolves when every file of
  /// the request finished. Higher \p Priority jobs are dispatched before
  /// lower ones; equal priorities serve in arrival order.
  std::future<Outcome> submit(std::vector<AnalysisInput> Inputs,
                              int Priority = 0);

  uint64_t jobsServed() const;

  /// Gates the dispatcher between drains (a paused queue accepts submits
  /// but starts no new drain). Exists so tests can stack requests and
  /// observe the priority order deterministically; the daemon itself never
  /// pauses.
  void pause();
  void resume();

private:
  struct Job {
    std::vector<AnalysisInput> Inputs;
    std::promise<Outcome> Done;
    Outcome Result;
    int Priority = 0;
    uint64_t Seq = 0; ///< Arrival order; the FIFO tiebreak among equals.
  };

  void dispatcherMain();
  void runJobs(std::vector<std::unique_ptr<Job>> Jobs);

  std::shared_ptr<Scheduler> Pool;
  ArtifactCache &Cache;

  mutable std::mutex Mu;
  std::condition_variable JobReady;
  std::vector<std::unique_ptr<Job>> Pending; ///< Arrival order (Seq asc).
  bool ShuttingDown = false;
  bool Paused = false;
  uint64_t NextSeq = 0;
  uint64_t Served = 0;

  std::thread Dispatcher;
};

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_REQUESTQUEUE_H
