//===- service/RequestQueue.h - Shared-pool request scheduling ---*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's analysis scheduler. Connection threads submit jobs (one per
/// analyze request, already reduced to AnalysisInputs); a single dispatcher
/// thread drains the highest-priority pending jobs — FIFO by arrival among
/// equals, so the default priority 0 degenerates to the old drain-everything
/// behavior — flattens them into per-file items, and
/// runs the items over ONE shared ThreadPoolScheduler — the same
/// coarse-grained whole-file dispatch AnalysisSession::analyzeBatch uses,
/// extended across concurrent requests. Each item is its own
/// AnalysisSession (per-session registry and meters), optionally seeded
/// from the ArtifactCache; the session's finer parallel grains run inline
/// on its worker, so one pool serves every granularity without
/// oversubscription.
///
/// Cache accounting is per-job: the outcome carries the hit/miss deltas of
/// exactly this request's items, which is what lets a client prove "the
/// resubmission skipped the frontend" without racing other clients.
///
/// Priorities are preemption at drain granularity, not mid-run: an editor's
/// priority-10 single-file request submitted while a priority-0 CI batch is
/// running waits for the in-flight drain, then jumps every still-queued
/// batch. Starvation is the operator's tradeoff to make — the daemon never
/// ages priorities up.
///
/// Resource governance and fault isolation: a request's --deadline-ms is
/// anchored at submit() (queue wait counts against it — the client asked
/// for a bound on its wall-clock wait, not on CPU time); expired jobs are
/// dropped pre-dispatch with a "timeout" outcome, and each in-flight item
/// carries a per-item cancel::Token sharing the request's absolute deadline
/// so sessions unwind cooperatively at their poll points. Every item runs
/// under its own try/catch — an AnalysisCancelled maps to the matching
/// error kind, any other exception (including injected faults) to
/// "internal" — so one poisoned request can never take down the dispatcher
/// or sibling requests. The first failing file (by input order) decides the
/// job's outcome.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_REQUESTQUEUE_H
#define ASTRAL_SERVICE_REQUESTQUEUE_H

#include "analyzer/AnalysisSession.h"
#include "analyzer/Scheduler.h"
#include "service/ArtifactCache.h"

#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace astral {
namespace service {

class RequestQueue {
public:
  struct Outcome {
    std::vector<AnalysisResult> Results; ///< In input order.
    uint64_t FrontendHits = 0;
    uint64_t FrontendMisses = 0;
    uint64_t PackingHits = 0;
    uint64_t PackingMisses = 0;
    uint64_t ServeOrder = 0; ///< Position in the daemon's global serve
                             ///< sequence (0-based) — the observable the
                             ///< priority tests pin.
    /// Empty = success. Otherwise the protocol error_kind ("timeout",
    /// "over-budget", "cancelled", "shutting-down", "internal") and its
    /// human-readable message; Results are not meaningful then.
    std::string ErrorKind;
    std::string ErrorMessage;
    bool ok() const { return ErrorKind.empty(); }
  };

  RequestQueue(std::shared_ptr<Scheduler> Pool, ArtifactCache &Cache);
  ~RequestQueue();

  RequestQueue(const RequestQueue &) = delete;
  RequestQueue &operator=(const RequestQueue &) = delete;

  /// Enqueues one request's inputs; the future resolves when every file of
  /// the request finished. Higher \p Priority jobs are dispatched before
  /// lower ones; equal priorities serve in arrival order. A non-zero
  /// \p DeadlineMs anchors the request's absolute deadline here, at
  /// arrival: a job still queued past it is dropped with a "timeout"
  /// outcome, an in-flight one unwinds at the analyzer's poll points.
  /// After beginShutdown() the future resolves immediately with a
  /// "shutting-down" outcome.
  std::future<Outcome> submit(std::vector<AnalysisInput> Inputs,
                              int Priority = 0, uint64_t DeadlineMs = 0);

  uint64_t jobsServed() const;

  /// Graceful drain: stops the dispatcher after the in-flight drain (if
  /// any) finishes, then resolves every still-queued job with a structured
  /// "shutting-down" outcome instead of abandoning its waiter. Idempotent;
  /// the destructor calls it.
  void beginShutdown();

  /// Gates the dispatcher between drains (a paused queue accepts submits
  /// but starts no new drain). Exists so tests can stack requests and
  /// observe the priority order deterministically; the daemon itself never
  /// pauses.
  void pause();
  void resume();

private:
  struct Job {
    std::vector<AnalysisInput> Inputs;
    std::promise<Outcome> Done;
    Outcome Result;
    int Priority = 0;
    uint64_t Seq = 0; ///< Arrival order; the FIFO tiebreak among equals.
    /// Absolute deadline anchored at submit(); nullopt = none.
    std::optional<cancel::Token::Clock::time_point> Deadline;
    /// Per-file failure slots, written by the item tasks (distinct
    /// indices, so no locking) and reduced to the Outcome after the drain.
    std::vector<std::string> ItemErrKind;
    std::vector<std::string> ItemErrMsg;
  };

  void dispatcherMain();
  void runJobs(std::vector<std::unique_ptr<Job>> Jobs);

  std::shared_ptr<Scheduler> Pool;
  ArtifactCache &Cache;

  mutable std::mutex Mu;
  std::condition_variable JobReady;
  std::vector<std::unique_ptr<Job>> Pending; ///< Arrival order (Seq asc).
  bool ShuttingDown = false;
  bool Paused = false;
  uint64_t NextSeq = 0;
  uint64_t Served = 0;

  std::thread Dispatcher;
};

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_REQUESTQUEUE_H
