//===- service/Json.h - Minimal JSON value for the wire protocol -*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value — parse and serialize — for the
/// service's newline-delimited protocol. Both protocol ends are this
/// codebase, so the dialect is deliberately narrow: objects keep their keys
/// sorted (std::map), numbers are doubles (serialized without a fraction
/// when integral), strings are byte strings with the standard escapes
/// (\uXXXX parses onto UTF-8; non-BMP escapes are rejected rather than
/// mis-encoded). This is NOT the analyzer's report format — reports are
/// rendered by cli::renderJsonReport and travel through the protocol as
/// opaque strings, which is what keeps daemon output byte-identical to the
/// one-shot driver.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_JSON_H
#define ASTRAL_SERVICE_JSON_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace astral {
namespace service {

class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool B) : K(Kind::Bool), BoolV(B) {}
  JsonValue(double N) : K(Kind::Number), NumV(N) {}
  JsonValue(int64_t N) : K(Kind::Number), NumV(static_cast<double>(N)) {}
  JsonValue(uint64_t N) : K(Kind::Number), NumV(static_cast<double>(N)) {}
  JsonValue(const char *S) : K(Kind::String), StrV(S) {}
  JsonValue(std::string S) : K(Kind::String), StrV(std::move(S)) {}

  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return BoolV; }
  double asNumber() const { return NumV; }
  const std::string &asString() const { return StrV; }
  const std::vector<JsonValue> &items() const { return ArrV; }
  std::vector<JsonValue> &items() { return ArrV; }
  const std::map<std::string, JsonValue> &members() const { return ObjV; }

  /// Object member access; null reference for missing keys.
  const JsonValue *find(const std::string &Key) const {
    auto It = ObjV.find(Key);
    return It == ObjV.end() ? nullptr : &It->second;
  }
  JsonValue &operator[](const std::string &Key) { return ObjV[Key]; }

  void push(JsonValue V) { ArrV.push_back(std::move(V)); }

  /// Compact one-line serialization (no newlines — the protocol is
  /// newline-delimited).
  std::string serialize() const;

  /// Parses one complete JSON document; trailing garbage is an error.
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string &Err);

private:
  Kind K;
  bool BoolV = false;
  double NumV = 0.0;
  std::string StrV;
  std::vector<JsonValue> ArrV;
  std::map<std::string, JsonValue> ObjV;
};

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_JSON_H
