//===- service/RequestQueue.cpp - Shared-pool request scheduling ------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/RequestQueue.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace astral {
namespace service {

RequestQueue::RequestQueue(std::shared_ptr<Scheduler> Pool,
                           ArtifactCache &Cache)
    : Pool(std::move(Pool)), Cache(Cache),
      Dispatcher([this] { dispatcherMain(); }) {}

RequestQueue::~RequestQueue() { beginShutdown(); }

static RequestQueue::Outcome shuttingDownOutcome() {
  RequestQueue::Outcome O;
  O.ErrorKind = "shutting-down";
  O.ErrorMessage = "astral serve: daemon is shutting down; the request "
                   "was never scheduled";
  return O;
}

void RequestQueue::beginShutdown() {
  {
    std::lock_guard<std::mutex> L(Mu);
    if (ShuttingDown)
      return;
    ShuttingDown = true;
  }
  JobReady.notify_all();
  // The dispatcher finishes its in-flight drain (those jobs resolve
  // normally, or with their own timeout/error outcomes), then exits.
  if (Dispatcher.joinable())
    Dispatcher.join();
  // Whatever is still queued never started; resolve it with a structured
  // outcome rather than leaving waiters blocked or throwing into them.
  std::vector<std::unique_ptr<Job>> Left;
  {
    std::lock_guard<std::mutex> L(Mu);
    Left = std::move(Pending);
    Pending.clear();
  }
  for (std::unique_ptr<Job> &J : Left)
    J->Done.set_value(shuttingDownOutcome());
}

std::future<RequestQueue::Outcome>
RequestQueue::submit(std::vector<AnalysisInput> Inputs, int Priority,
                     uint64_t DeadlineMs) {
  auto J = std::make_unique<Job>();
  J->Inputs = std::move(Inputs);
  J->Priority = Priority;
  if (DeadlineMs)
    J->Deadline = cancel::Token::Clock::now() +
                  std::chrono::milliseconds(DeadlineMs);
  std::future<Outcome> F = J->Done.get_future();
  bool Rejected = false;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (ShuttingDown) {
      Rejected = true;
    } else {
      J->Seq = NextSeq++;
      Pending.push_back(std::move(J));
    }
  }
  if (Rejected) {
    J->Done.set_value(shuttingDownOutcome());
    return F;
  }
  JobReady.notify_one();
  return F;
}

void RequestQueue::pause() {
  std::lock_guard<std::mutex> L(Mu);
  Paused = true;
}

void RequestQueue::resume() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Paused = false;
  }
  JobReady.notify_all();
}

uint64_t RequestQueue::jobsServed() const {
  std::lock_guard<std::mutex> L(Mu);
  return Served;
}

void RequestQueue::dispatcherMain() {
  for (;;) {
    std::vector<std::unique_ptr<Job>> Batch;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobReady.wait(L, [&] {
        return ShuttingDown || (!Paused && !Pending.empty());
      });
      if (ShuttingDown)
        return;
      // One drain = every pending job of the single highest priority, in
      // arrival order (Pending is Seq-ascending by construction). Lower
      // priorities stay queued; a high-priority job that arrives during
      // the drain wins the next round.
      int Top = Pending.front()->Priority;
      for (const std::unique_ptr<Job> &J : Pending)
        Top = std::max(Top, J->Priority);
      std::vector<std::unique_ptr<Job>> Rest;
      for (std::unique_ptr<Job> &J : Pending)
        (J->Priority == Top ? Batch : Rest).push_back(std::move(J));
      Pending = std::move(Rest);
    }
    runJobs(std::move(Batch));
  }
}

void RequestQueue::runJobs(std::vector<std::unique_ptr<Job>> Jobs) {
  // Pre-dispatch deadline policing: a job whose deadline passed while it
  // queued gets a "timeout" outcome without touching the pool — the
  // cheapest possible failure, and the behavior the deadline promises (a
  // bound on the client's wall-clock wait, queue time included).
  {
    auto Now = cancel::Token::Clock::now();
    std::vector<std::unique_ptr<Job>> Live;
    uint64_t Dropped = 0;
    for (std::unique_ptr<Job> &J : Jobs) {
      if (J->Deadline && Now >= *J->Deadline) {
        Outcome O;
        O.ErrorKind = "timeout";
        O.ErrorMessage = "astral serve: request deadline expired while "
                         "queued; the analysis never started";
        J->Done.set_value(std::move(O));
        ++Dropped;
      } else {
        Live.push_back(std::move(J));
      }
    }
    if (Dropped) {
      std::lock_guard<std::mutex> L(Mu);
      Served += Dropped;
    }
    Jobs = std::move(Live);
    if (Jobs.empty())
      return;
  }

  // Flatten every drained job into per-file items so concurrent requests
  // share the pool fairly (a one-file request is not stuck behind a
  // seven-file one — both fan out together).
  struct Item {
    Job *Owner;
    size_t FileIndex;
  };
  std::vector<Item> Items;
  for (std::unique_ptr<Job> &J : Jobs) {
    J->Result.Results.resize(J->Inputs.size());
    J->ItemErrKind.resize(J->Inputs.size());
    J->ItemErrMsg.resize(J->Inputs.size());
    for (size_t F = 0; F < J->Inputs.size(); ++F)
      Items.push_back(Item{J.get(), F});
  }

  struct JobCounters {
    std::atomic<uint64_t> FrontendHits{0}, FrontendMisses{0};
    std::atomic<uint64_t> PackingHits{0}, PackingMisses{0};
  };
  std::vector<JobCounters> Counters(Jobs.size());
  std::unordered_map<Job *, size_t> JobIndex;
  for (size_t J = 0; J < Jobs.size(); ++J)
    JobIndex[Jobs[J].get()] = J;

  auto RunItem = [&](size_t I) {
    Job &J = *Items[I].Owner;
    JobCounters &C = Counters[JobIndex[&J]];
    const size_t FI = Items[I].FileIndex;
    const AnalysisInput &In = J.Inputs[FI];

    const std::string FrontKey = AnalysisSession::frontendCacheKey(In);
    const std::string PackKey = AnalysisSession::packingCacheKey(In);

    AnalysisSession S(In);
    S.setScheduler(Pool);
    // Per-item token: the request's absolute deadline is shared (every
    // file of the request expires together), the byte budget is armed by
    // the session against its own meter. One token per item because
    // concurrent items would otherwise race re-arming the budget meter.
    auto Tok = std::make_shared<cancel::Token>();
    if (J.Deadline)
      Tok->setDeadline(*J.Deadline);
    S.setCancelToken(Tok);

    std::shared_ptr<const AnalysisSession::FrontendPhase> FE =
        Cache.lookupFrontend(FrontKey);
    if (FE) {
      S.adoptFrontend(FE);
      C.FrontendHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      C.FrontendMisses.fetch_add(1, std::memory_order_relaxed);
    }

    // Packing artifacts only exist for analyzable inputs; a failed frontend
    // never reaches the packing phase, so it neither counts nor stores.
    bool AdoptedPacking = false;
    if (FE && FE->Ok) {
      if (std::optional<ArtifactCache::PackingArtifact> PA =
              Cache.lookupPacking(PackKey)) {
        S.adoptPacking(PA->Layout, PA->Packs);
        AdoptedPacking = true;
        C.PackingHits.fetch_add(1, std::memory_order_relaxed);
      } else {
        C.PackingMisses.fetch_add(1, std::memory_order_relaxed);
      }
    }

    J.Result.Results[FI] = S.report();

    if (!FE)
      Cache.storeFrontend(FrontKey, S.shareFrontend());
    if (!AdoptedPacking && S.runFrontend().Ok)
      Cache.storePacking(PackKey, ArtifactCache::PackingArtifact{
                                      S.shareLayout(), S.sharePacking()});
  };

  // Request isolation: every item runs under its own try/catch, so one
  // cancelled, over-deadline, or outright faulting file poisons only its
  // own job's outcome — sibling requests in the drain and the dispatcher
  // itself are untouched. The slots are per-(job, file), written from at
  // most one task each; no locking needed.
  auto RunItemIsolated = [&](size_t I) {
    Job &J = *Items[I].Owner;
    const size_t FI = Items[I].FileIndex;
    try {
      RunItem(I);
    } catch (const cancel::AnalysisCancelled &C) {
      J.ItemErrKind[FI] = cancel::reasonName(C.reason());
      J.ItemErrMsg[FI] = C.what();
    } catch (const std::exception &E) {
      J.ItemErrKind[FI] = "internal";
      J.ItemErrMsg[FI] = E.what();
    } catch (...) {
      J.ItemErrKind[FI] = "internal";
      J.ItemErrMsg[FI] = "unknown exception during analysis";
    }
  };

  // The isolated wrapper never throws, so parallelFor cannot rethrow; the
  // belt-and-braces catch below only guards parallelFor's own machinery.
  try {
    Pool->parallelFor(Items.size(), RunItemIsolated);
  } catch (...) {
    std::exception_ptr E = std::current_exception();
    {
      std::lock_guard<std::mutex> L(Mu);
      Served += Jobs.size();
    }
    for (std::unique_ptr<Job> &J : Jobs)
      J->Done.set_exception(E);
    return;
  }

  // Count before resolving: a client that receives its response and
  // immediately asks for `status` must see its own request in the total.
  uint64_t Base;
  {
    std::lock_guard<std::mutex> L(Mu);
    Base = Served;
    Served += Jobs.size();
  }
  for (size_t J = 0; J < Jobs.size(); ++J) {
    Jobs[J]->Result.ServeOrder = Base + J;
    Jobs[J]->Result.FrontendHits = Counters[J].FrontendHits.load();
    Jobs[J]->Result.FrontendMisses = Counters[J].FrontendMisses.load();
    Jobs[J]->Result.PackingHits = Counters[J].PackingHits.load();
    Jobs[J]->Result.PackingMisses = Counters[J].PackingMisses.load();
    // The first failing file (input order) decides the job's error; a job
    // with no failing file resolves as a normal result set.
    for (size_t F = 0; F < Jobs[J]->ItemErrKind.size(); ++F) {
      if (!Jobs[J]->ItemErrKind[F].empty()) {
        Jobs[J]->Result.ErrorKind = Jobs[J]->ItemErrKind[F];
        Jobs[J]->Result.ErrorMessage = Jobs[J]->Inputs[F].FileName + ": " +
                                       Jobs[J]->ItemErrMsg[F];
        break;
      }
    }
    Jobs[J]->Done.set_value(std::move(Jobs[J]->Result));
  }
}

} // namespace service
} // namespace astral
