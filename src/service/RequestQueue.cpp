//===- service/RequestQueue.cpp - Shared-pool request scheduling ------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/RequestQueue.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace astral {
namespace service {

RequestQueue::RequestQueue(std::shared_ptr<Scheduler> Pool,
                           ArtifactCache &Cache)
    : Pool(std::move(Pool)), Cache(Cache),
      Dispatcher([this] { dispatcherMain(); }) {}

RequestQueue::~RequestQueue() {
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
  }
  JobReady.notify_all();
  Dispatcher.join();
  // Pending jobs never started; resolve their futures with an error rather
  // than leaving waiters blocked forever.
  for (std::unique_ptr<Job> &J : Pending)
    J->Done.set_exception(std::make_exception_ptr(
        std::runtime_error("astral serve: daemon shut down before the "
                           "request was scheduled")));
}

std::future<RequestQueue::Outcome>
RequestQueue::submit(std::vector<AnalysisInput> Inputs, int Priority) {
  auto J = std::make_unique<Job>();
  J->Inputs = std::move(Inputs);
  J->Priority = Priority;
  std::future<Outcome> F = J->Done.get_future();
  {
    std::lock_guard<std::mutex> L(Mu);
    J->Seq = NextSeq++;
    Pending.push_back(std::move(J));
  }
  JobReady.notify_one();
  return F;
}

void RequestQueue::pause() {
  std::lock_guard<std::mutex> L(Mu);
  Paused = true;
}

void RequestQueue::resume() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Paused = false;
  }
  JobReady.notify_all();
}

uint64_t RequestQueue::jobsServed() const {
  std::lock_guard<std::mutex> L(Mu);
  return Served;
}

void RequestQueue::dispatcherMain() {
  for (;;) {
    std::vector<std::unique_ptr<Job>> Batch;
    {
      std::unique_lock<std::mutex> L(Mu);
      JobReady.wait(L, [&] {
        return ShuttingDown || (!Paused && !Pending.empty());
      });
      if (ShuttingDown)
        return;
      // One drain = every pending job of the single highest priority, in
      // arrival order (Pending is Seq-ascending by construction). Lower
      // priorities stay queued; a high-priority job that arrives during
      // the drain wins the next round.
      int Top = Pending.front()->Priority;
      for (const std::unique_ptr<Job> &J : Pending)
        Top = std::max(Top, J->Priority);
      std::vector<std::unique_ptr<Job>> Rest;
      for (std::unique_ptr<Job> &J : Pending)
        (J->Priority == Top ? Batch : Rest).push_back(std::move(J));
      Pending = std::move(Rest);
    }
    runJobs(std::move(Batch));
  }
}

void RequestQueue::runJobs(std::vector<std::unique_ptr<Job>> Jobs) {
  // Flatten every drained job into per-file items so concurrent requests
  // share the pool fairly (a one-file request is not stuck behind a
  // seven-file one — both fan out together).
  struct Item {
    Job *Owner;
    size_t FileIndex;
  };
  std::vector<Item> Items;
  for (std::unique_ptr<Job> &J : Jobs) {
    J->Result.Results.resize(J->Inputs.size());
    for (size_t F = 0; F < J->Inputs.size(); ++F)
      Items.push_back(Item{J.get(), F});
  }

  struct JobCounters {
    std::atomic<uint64_t> FrontendHits{0}, FrontendMisses{0};
    std::atomic<uint64_t> PackingHits{0}, PackingMisses{0};
  };
  std::vector<JobCounters> Counters(Jobs.size());
  std::unordered_map<Job *, size_t> JobIndex;
  for (size_t J = 0; J < Jobs.size(); ++J)
    JobIndex[Jobs[J].get()] = J;

  auto RunItems = [&](size_t I) {
    Job &J = *Items[I].Owner;
    JobCounters &C = Counters[JobIndex[&J]];
    const AnalysisInput &In = J.Inputs[Items[I].FileIndex];

    const std::string FrontKey = AnalysisSession::frontendCacheKey(In);
    const std::string PackKey = AnalysisSession::packingCacheKey(In);

    AnalysisSession S(In);
    S.setScheduler(Pool);

    std::shared_ptr<const AnalysisSession::FrontendPhase> FE =
        Cache.lookupFrontend(FrontKey);
    if (FE) {
      S.adoptFrontend(FE);
      C.FrontendHits.fetch_add(1, std::memory_order_relaxed);
    } else {
      C.FrontendMisses.fetch_add(1, std::memory_order_relaxed);
    }

    // Packing artifacts only exist for analyzable inputs; a failed frontend
    // never reaches the packing phase, so it neither counts nor stores.
    bool AdoptedPacking = false;
    if (FE && FE->Ok) {
      if (std::optional<ArtifactCache::PackingArtifact> PA =
              Cache.lookupPacking(PackKey)) {
        S.adoptPacking(PA->Layout, PA->Packs);
        AdoptedPacking = true;
        C.PackingHits.fetch_add(1, std::memory_order_relaxed);
      } else {
        C.PackingMisses.fetch_add(1, std::memory_order_relaxed);
      }
    }

    J.Result.Results[Items[I].FileIndex] = S.report();

    if (!FE)
      Cache.storeFrontend(FrontKey, S.shareFrontend());
    if (!AdoptedPacking && S.runFrontend().Ok)
      Cache.storePacking(PackKey, ArtifactCache::PackingArtifact{
                                      S.shareLayout(), S.sharePacking()});
  };

  try {
    Pool->parallelFor(Items.size(), RunItems);
  } catch (...) {
    // A task failed (parallelFor rethrows the first error by index). Every
    // job of this drain fails with it — leaving any future unresolved would
    // hang its connection thread forever.
    std::exception_ptr E = std::current_exception();
    {
      std::lock_guard<std::mutex> L(Mu);
      Served += Jobs.size();
    }
    for (std::unique_ptr<Job> &J : Jobs)
      J->Done.set_exception(E);
    return;
  }

  // Count before resolving: a client that receives its response and
  // immediately asks for `status` must see its own request in the total.
  uint64_t Base;
  {
    std::lock_guard<std::mutex> L(Mu);
    Base = Served;
    Served += Jobs.size();
  }
  for (size_t J = 0; J < Jobs.size(); ++J) {
    Jobs[J]->Result.ServeOrder = Base + J;
    Jobs[J]->Result.FrontendHits = Counters[J].FrontendHits.load();
    Jobs[J]->Result.FrontendMisses = Counters[J].FrontendMisses.load();
    Jobs[J]->Result.PackingHits = Counters[J].PackingHits.load();
    Jobs[J]->Result.PackingMisses = Counters[J].PackingMisses.load();
    Jobs[J]->Done.set_value(std::move(Jobs[J]->Result));
  }
}

} // namespace service
} // namespace astral
