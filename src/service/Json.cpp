//===- service/Json.cpp - Minimal JSON value for the wire protocol ----------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace astral {
namespace service {

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void escapeInto(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void serializeInto(std::string &Out, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case JsonValue::Kind::Number: {
    double N = V.asNumber();
    // Integral values print as integers (counters, exit codes, versions);
    // everything else round-trips via %.17g.
    if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 9.0e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(N));
      Out += Buf;
    } else if (std::isfinite(N)) {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), "%.17g", N);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no Inf/NaN; the protocol never sends them.
    }
    break;
  }
  case JsonValue::Kind::String:
    Out += '"';
    escapeInto(Out, V.asString());
    Out += '"';
    break;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      serializeInto(Out, E);
    }
    Out += ']';
    break;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Member] : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      escapeInto(Out, Key);
      Out += "\":";
      serializeInto(Out, Member);
    }
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string JsonValue::serialize() const {
  std::string Out;
  serializeInto(Out, *this);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Err) : S(Text), Err(Err) {}

  std::optional<JsonValue> run() {
    skipWs();
    JsonValue V;
    if (!parseValue(V))
      return std::nullopt;
    skipWs();
    if (Pos != S.size()) {
      fail("trailing characters after JSON document");
      return std::nullopt;
    }
    return V;
  }

private:
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = "json: " + Msg + " (at byte " + std::to_string(Pos) + ")";
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t Len = std::char_traits<char>::length(Lit);
    if (S.compare(Pos, Len, Lit) != 0) {
      fail(std::string("expected '") + Lit + "'");
      return false;
    }
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Pos >= S.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (S[Pos]) {
    case 'n':
      if (!literal("null"))
        return false;
      Out = JsonValue();
      return true;
    case 't':
      if (!literal("true"))
        return false;
      Out = JsonValue(true);
      return true;
    case 'f':
      if (!literal("false"))
        return false;
      Out = JsonValue(false);
      return true;
    case '"': {
      std::string Str;
      if (!parseString(Str))
        return false;
      Out = JsonValue(std::move(Str));
      return true;
    }
    case '[':
      return parseArray(Out);
    case '{':
      return parseObject(Out);
    default:
      return parseNumber(Out);
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // Opening quote (dispatched on it).
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        if (Pos + 1 >= S.size()) {
          fail("unterminated escape");
          return false;
        }
        char E = S[Pos + 1];
        Pos += 2;
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (Pos + 4 > S.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = S[Pos + size_t(I)];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= unsigned(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= unsigned(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= unsigned(H - 'A' + 10);
            else {
              fail("invalid \\u escape");
              return false;
            }
          }
          Pos += 4;
          if (Code >= 0xD800 && Code <= 0xDFFF) {
            // Surrogates never appear: the encoder only escapes control
            // bytes, and the protocol carries raw UTF-8 elsewhere.
            fail("surrogate \\u escapes are not supported");
            return false;
          }
          // Encode the BMP code point as UTF-8.
          if (Code < 0x80) {
            Out += char(Code);
          } else if (Code < 0x800) {
            Out += char(0xC0 | (Code >> 6));
            Out += char(0x80 | (Code & 0x3F));
          } else {
            Out += char(0xE0 | (Code >> 12));
            Out += char(0x80 | ((Code >> 6) & 0x3F));
            Out += char(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return false;
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    fail("unterminated string");
    return false;
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           ((S[Pos] >= '0' && S[Pos] <= '9') || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '+' ||
            S[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected a value");
      return false;
    }
    try {
      size_t Used = 0;
      std::string Tok = S.substr(Start, Pos - Start);
      double N = std::stod(Tok, &Used);
      if (Used != Tok.size()) {
        fail("malformed number");
        return false;
      }
      Out = JsonValue(N);
      return true;
    } catch (const std::exception &) {
      fail("malformed number");
      return false;
    }
  }

  bool parseArray(JsonValue &Out) {
    ++Pos; // '['
    Out = JsonValue::array();
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      JsonValue E;
      skipWs();
      if (!parseValue(E))
        return false;
      Out.push(std::move(E));
      skipWs();
      if (Pos >= S.size()) {
        fail("unterminated array");
        return false;
      }
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parseObject(JsonValue &Out) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (Pos >= S.size() || S[Pos] != '"') {
        fail("expected object key");
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':') {
        fail("expected ':'");
        return false;
      }
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V))
        return false;
      Out[Key] = std::move(V);
      skipWs();
      if (Pos >= S.size()) {
        fail("unterminated object");
        return false;
      }
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  const std::string &S;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text,
                                          std::string &Err) {
  return Parser(Text, Err).run();
}

} // namespace service
} // namespace astral
