//===- service/Protocol.h - Daemon wire protocol -----------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `astral serve` protocol: newline-delimited JSON over a Unix-domain
/// stream socket, one request line -> one response line.
///
/// Requests:
///   {"op":"analyze","args":[flag tokens...],"priority":N,
///    "files":[{"path":P,"source":S,"headers":{name:text,...}},...]}
///   {"op":"status"}
///   {"op":"cache-stats"}
///   {"op":"shutdown"}
///
/// The client does everything path-shaped locally (reading files, C++
/// harness extraction, #include preloading) and ships extracted sources;
/// the daemon applies `@astral` directives and the forwarded flag tokens
/// through the same cli::parseArgs/assembleOptions the one-shot driver
/// uses, so semantics cannot drift between the two modes.
///
/// Analyze responses embed the one-shot driver's exact output as opaque
/// strings:
///   {"ok":true,"op":"analyze","schema_version":N,"exit_code":E,
///    "stdout":...,"stderr":...,
///    "cache":{"frontend_hits":..,"frontend_misses":..,
///             "packing_hits":..,"packing_misses":..}}
/// Errors: {"ok":false,"error":"...","error_kind":K} where K classifies the
/// failure machine-readably: "bad-request" (malformed frame, unknown op,
/// oversized line, invalid flags), "timeout" (a --deadline-ms expired),
/// "over-budget" (--memory-budget-mb exceeded under --on-budget=fail),
/// "shutting-down" (queued but never scheduled before shutdown), and
/// "internal" (any other exception; the daemon itself keeps serving).
/// Every response carries schema_version; the client refuses mismatches
/// (a daemon of another build vintage) instead of printing output it may
/// misread.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_PROTOCOL_H
#define ASTRAL_SERVICE_PROTOCOL_H

#include "service/Json.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace astral {
namespace service {

/// One file as shipped by the client: extracted source plus its preloaded
/// header closure.
struct FilePayload {
  std::string Path;
  std::string Source;
  std::map<std::string, std::string> Headers;
};

struct Request {
  enum class Op { Analyze, Status, CacheStats, Shutdown };
  Op Operation = Op::Status;
  std::vector<std::string> Args;   ///< Forwarded flag tokens (analyze).
  std::vector<FilePayload> Files;  ///< Inputs (analyze).
  int Priority = 0;                ///< Scheduling weight (analyze); higher
                                   ///< preempts queued lower-priority jobs.
};

const char *opName(Request::Op Op);

/// Parses one request line. On failure returns nullopt with \p Err set.
std::optional<Request> decodeRequest(const std::string &Line,
                                     std::string &Err);

/// Client-side encoder; one line, no trailing newline.
std::string encodeRequest(const Request &R);

/// {"ok":false,"error":Message,"error_kind":Kind} — the uniform failure
/// response. \p Kind is one of the classifications documented above;
/// protocol-shaped failures default to "bad-request".
std::string encodeError(const std::string &Message,
                        const std::string &Kind = "bad-request");

/// True iff \p S is well-formed UTF-8. Request lines are rejected before
/// JSON decoding when they are not: the protocol is JSON, and answering a
/// mis-encoded frame with a structured error beats echoing garbage bytes
/// back into a log pipeline.
bool validUtf8(const std::string &S);

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_PROTOCOL_H
