//===- service/Protocol.h - Daemon wire protocol -----------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `astral serve` protocol: newline-delimited JSON over a Unix-domain
/// stream socket, one request line -> one response line.
///
/// Requests:
///   {"op":"analyze","args":[flag tokens...],"priority":N,
///    "files":[{"path":P,"source":S,"headers":{name:text,...}},...]}
///   {"op":"status"}
///   {"op":"cache-stats"}
///   {"op":"shutdown"}
///
/// The client does everything path-shaped locally (reading files, C++
/// harness extraction, #include preloading) and ships extracted sources;
/// the daemon applies `@astral` directives and the forwarded flag tokens
/// through the same cli::parseArgs/assembleOptions the one-shot driver
/// uses, so semantics cannot drift between the two modes.
///
/// Analyze responses embed the one-shot driver's exact output as opaque
/// strings:
///   {"ok":true,"op":"analyze","schema_version":N,"exit_code":E,
///    "stdout":...,"stderr":...,
///    "cache":{"frontend_hits":..,"frontend_misses":..,
///             "packing_hits":..,"packing_misses":..}}
/// Errors: {"ok":false,"error":"..."}. Every response carries
/// schema_version; the client refuses mismatches (a daemon of another
/// build vintage) instead of printing output it may misread.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_PROTOCOL_H
#define ASTRAL_SERVICE_PROTOCOL_H

#include "service/Json.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace astral {
namespace service {

/// One file as shipped by the client: extracted source plus its preloaded
/// header closure.
struct FilePayload {
  std::string Path;
  std::string Source;
  std::map<std::string, std::string> Headers;
};

struct Request {
  enum class Op { Analyze, Status, CacheStats, Shutdown };
  Op Operation = Op::Status;
  std::vector<std::string> Args;   ///< Forwarded flag tokens (analyze).
  std::vector<FilePayload> Files;  ///< Inputs (analyze).
  int Priority = 0;                ///< Scheduling weight (analyze); higher
                                   ///< preempts queued lower-priority jobs.
};

const char *opName(Request::Op Op);

/// Parses one request line. On failure returns nullopt with \p Err set.
std::optional<Request> decodeRequest(const std::string &Line,
                                     std::string &Err);

/// Client-side encoder; one line, no trailing newline.
std::string encodeRequest(const Request &R);

/// {"ok":false,"error":Message} — the uniform failure response.
std::string encodeError(const std::string &Message);

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_PROTOCOL_H
