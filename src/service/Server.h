//===- service/Server.h - The analyzer-as-a-service daemon ------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `astral serve`: a long-lived daemon on a Unix-domain stream socket
/// speaking the newline-delimited JSON protocol of service/Protocol.h.
/// One thread per connection decodes requests; analyze requests are
/// assembled with the shared cli layer (same directive/flag semantics as
/// the one-shot driver) and scheduled through the RequestQueue onto one
/// shared worker pool, seeded from the content-hash ArtifactCache.
/// Responses embed cli::renderRun output verbatim, so a client session is
/// byte-identical to running astral-cli directly — warm or cold.
///
/// Lifecycle: start() binds (recovering stale socket files left by a dead
/// daemon), wait() blocks until a shutdown request, requestStop(), or a
/// handled signal, then drains gracefully: the in-flight analysis drain
/// finishes (or cancels past its own deadline), queued-but-unstarted
/// requests resolve with structured "shutting-down" errors, every
/// connection gets its pending response, and the socket is unlinked.
///
/// Fault posture: a request can fail — malformed frame, expired deadline,
/// busted memory budget, an injected fault — but the daemon cannot. Every
/// per-request failure becomes an {"ok":false,...,"error_kind":...}
/// response (service/Protocol.h) and the accept loop keeps serving.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_SERVER_H
#define ASTRAL_SERVICE_SERVER_H

#include "analyzer/Scheduler.h"
#include "service/ArtifactCache.h"
#include "service/Protocol.h"
#include "service/RequestQueue.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace astral {
namespace service {

struct ServerConfig {
  std::string SocketPath;
  /// Worker threads of the shared pool (0 = one per hardware thread, the
  /// Scheduler::effectiveJobs convention). Per-request --jobs values do not
  /// resize the daemon's pool; they only shape the within-file dispatch.
  unsigned Jobs = 0;
  size_t CacheEntries = 64;
  bool Verbose = true;
  /// Upper bound on one request line (the framing unit). A connection that
  /// exceeds it without producing a newline gets a structured "bad-request"
  /// error and is closed — an unframed flood must not grow the buffer
  /// without bound. Tests shrink this to exercise the guard cheaply.
  size_t MaxRequestBytes = 64u << 20;
};

class Server {
public:
  explicit Server(ServerConfig C);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and starts the accept loop. False + \p Err on failure (socket in
  /// use by a live daemon, path too long, ...).
  bool start(std::string &Err);

  /// Blocks until the daemon stops (shutdown request or requestStop), then
  /// drains every connection and removes the socket. Returns the process
  /// exit code.
  int wait();

  /// Thread-safe, async-signal-safe stop trigger.
  void requestStop();

  const std::string &socketPath() const { return Cfg.SocketPath; }

private:
  void acceptLoop();
  void serveConnection(int Fd);
  std::string handleLine(const std::string &Line, bool &StopAfterSend);
  std::string handleAnalyze(const Request &R);
  std::string handleStatus();
  std::string handleCacheStats();

  ServerConfig Cfg;
  int ListenFd = -1;
  int StopPipe[2] = {-1, -1};

  std::shared_ptr<Scheduler> Pool;
  ArtifactCache Cache;
  std::unique_ptr<RequestQueue> Queue;

  std::thread Acceptor;
  std::mutex ConnMu;
  std::vector<int> ConnFds;
  std::vector<std::thread> ConnThreads;
  std::atomic<bool> Stopping{false};
  bool Started = false;
};

/// The `astral-cli serve` subcommand: parses its flags, runs a Server until
/// shutdown, returns the process exit code. Installs SIGINT/SIGTERM
/// handlers that stop the daemon cleanly.
int runServeCommand(const std::vector<std::string> &Args);

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_SERVER_H
