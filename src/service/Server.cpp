//===- service/Server.cpp - The analyzer-as-a-service daemon ----------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "analyzer/CliOptions.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace astral {
namespace service {

Server::Server(ServerConfig C)
    : Cfg(std::move(C)),
      Pool(Scheduler::create(Cfg.Jobs)),
      Cache(Cfg.CacheEntries) {}

Server::~Server() {
  if (Started && !Stopping.load())
    requestStop();
  if (Acceptor.joinable())
    wait();
  if (StopPipe[0] != -1)
    ::close(StopPipe[0]);
  if (StopPipe[1] != -1)
    ::close(StopPipe[1]);
}

bool Server::start(std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Cfg.SocketPath.empty() ||
      Cfg.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "astral serve: socket path must be 1.." +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return false;
  }
  std::memcpy(Addr.sun_path, Cfg.SocketPath.c_str(),
              Cfg.SocketPath.size() + 1);

  if (::pipe(StopPipe) != 0) {
    Err = std::string("astral serve: pipe: ") + std::strerror(errno);
    return false;
  }

  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("astral serve: socket: ") + std::strerror(errno);
    return false;
  }

  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0) {
    if (errno != EADDRINUSE) {
      Err = std::string("astral serve: bind ") + Cfg.SocketPath + ": " +
            std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    // A socket file exists. Probe it: a live daemon accepts the connect, a
    // stale file left by a dead daemon refuses — then it is safe to unlink
    // and take the address over.
    int Probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    bool Live = Probe >= 0 &&
                ::connect(Probe, reinterpret_cast<sockaddr *>(&Addr),
                          sizeof(Addr)) == 0;
    if (Probe >= 0)
      ::close(Probe);
    if (Live) {
      Err = "astral serve: a daemon is already listening on " +
            Cfg.SocketPath;
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    ::unlink(Cfg.SocketPath.c_str());
    if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
               sizeof(Addr)) != 0) {
      Err = std::string("astral serve: bind ") + Cfg.SocketPath + ": " +
            std::strerror(errno);
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
  }

  if (::listen(ListenFd, 64) != 0) {
    Err = std::string("astral serve: listen: ") + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    ::unlink(Cfg.SocketPath.c_str());
    return false;
  }

  Queue = std::make_unique<RequestQueue>(Pool, Cache);
  Acceptor = std::thread([this] { acceptLoop(); });
  Started = true;
  return true;
}

void Server::requestStop() {
  Stopping.store(true);
  if (StopPipe[1] != -1) {
    char B = 's';
    // Async-signal-safe; a full pipe just means a stop is already pending.
    ssize_t Ignored = ::write(StopPipe[1], &B, 1);
    (void)Ignored;
  }
}

int Server::wait() {
  if (Acceptor.joinable())
    Acceptor.join();
  // Graceful drain, in dependency order: first the queue — the in-flight
  // analysis drain finishes (its own deadlines still apply) and every
  // queued-but-unstarted job resolves with a structured "shutting-down"
  // outcome, so connection threads blocked on futures wake up with
  // something to send instead of hanging.
  if (Queue)
    Queue->beginShutdown();
  // Unblock connection threads stuck in recv, then collect them. Only the
  // read side is shut down: a thread still writing a response (a just-served
  // analyze, the shutdown acknowledgement) finishes its send and exits on
  // the Stopping check — connections drain instead of being cut mid-reply.
  {
    std::lock_guard<std::mutex> L(ConnMu);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RD);
  }
  for (;;) {
    std::thread T;
    {
      std::lock_guard<std::mutex> L(ConnMu);
      if (ConnThreads.empty())
        break;
      T = std::move(ConnThreads.back());
      ConnThreads.pop_back();
    }
    if (T.joinable())
      T.join();
  }
  Queue.reset(); // Joins the dispatcher; no connection can submit anymore.
  if (ListenFd != -1) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  ::unlink(Cfg.SocketPath.c_str());
  if (Cfg.Verbose)
    std::fprintf(stderr, "astral serve: stopped\n");
  return 0;
}

void Server::acceptLoop() {
  for (;;) {
    pollfd P[2] = {{ListenFd, POLLIN, 0}, {StopPipe[0], POLLIN, 0}};
    if (::poll(P, 2, -1) < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Stopping.load() || (P[1].revents & POLLIN))
      break;
    if (!(P[0].revents & POLLIN))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> L(ConnMu);
    if (Stopping.load()) {
      ::close(Fd);
      break;
    }
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { serveConnection(Fd); });
  }
}

void Server::serveConnection(int Fd) {
  std::string Buf;
  char Chunk[65536];
  bool Open = true;
  auto SendAll = [&](const std::string &Bytes) -> bool {
    size_t Sent = 0;
    while (Sent < Bytes.size()) {
      ssize_t W = ::send(Fd, Bytes.data() + Sent, Bytes.size() - Sent,
                         MSG_NOSIGNAL);
      if (W <= 0)
        return false;
      Sent += size_t(W);
    }
    return true;
  };
  while (Open) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Buf.append(Chunk, size_t(N));
    size_t Nl;
    while (Open && (Nl = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (Line.empty())
        continue;
      bool StopAfterSend = false;
      std::string Response;
      try {
        Response = handleLine(Line, StopAfterSend);
      } catch (const std::exception &E) {
        // Nothing a single request does may take the daemon down; whatever
        // escaped the handlers becomes a structured internal error.
        Response = encodeError(E.what(), "internal");
      } catch (...) {
        Response = encodeError("unknown exception while handling request",
                               "internal");
      }
      Response += '\n';
      // Chaos sites for the transport itself: "socket-write" simulates the
      // peer (or kernel) failing the send, "torn-frame" a daemon dying
      // mid-response. Both drop only this connection.
      try {
        faultinject::fire("socket-write");
      } catch (const faultinject::InjectedFault &) {
        Open = false;
        break;
      }
      if (faultinject::shouldFire("torn-frame")) {
        SendAll(Response.substr(0, Response.size() / 2));
        Open = false;
        break;
      }
      if (!SendAll(Response)) {
        Open = false;
        break;
      }
      if (StopAfterSend)
        requestStop();
      if (Stopping.load())
        Open = false; // A shutdown was requested; answer no further lines.
    }
    // Framing guard: a line that outgrows the cap without a newline would
    // otherwise buffer unboundedly. Answer once, structurally, and close.
    if (Open && Buf.size() > Cfg.MaxRequestBytes) {
      SendAll(encodeError("request line exceeds " +
                              std::to_string(Cfg.MaxRequestBytes) +
                              " bytes before a newline",
                          "bad-request") +
              "\n");
      Open = false;
    }
  }
  {
    std::lock_guard<std::mutex> L(ConnMu);
    ConnFds.erase(std::find(ConnFds.begin(), ConnFds.end(), Fd));
  }
  ::close(Fd);
}

std::string Server::handleLine(const std::string &Line, bool &StopAfterSend) {
  if (!validUtf8(Line))
    return encodeError("request line is not valid UTF-8");
  std::string Err;
  std::optional<Request> R = decodeRequest(Line, Err);
  if (!R)
    return encodeError(Err);
  switch (R->Operation) {
  case Request::Op::Analyze:
    return handleAnalyze(*R);
  case Request::Op::Status:
    return handleStatus();
  case Request::Op::CacheStats:
    return handleCacheStats();
  case Request::Op::Shutdown: {
    if (Cfg.Verbose)
      std::fprintf(stderr, "astral serve: shutdown requested\n");
    // The stop is signalled by the connection thread only after this
    // response has been fully sent; stopping here would let wait() shut the
    // socket down mid-send and the requester would never see its reply.
    StopAfterSend = true;
    JsonValue Doc = JsonValue::object();
    Doc["ok"] = JsonValue(true);
    Doc["op"] = JsonValue("shutdown");
    Doc["schema_version"] = JsonValue(uint64_t(ReportSchemaVersion));
    return Doc.serialize();
  }
  }
  return encodeError("unreachable");
}

std::string Server::handleAnalyze(const Request &R) {
  // The forwarded flag tokens go through the exact parser the one-shot
  // driver uses; inputs were already reduced to (path, source, headers) by
  // the client, so any path token here is a client bug, not a file to read.
  cli::CliOptions Cli;
  cli::ParseOutcome Parsed = cli::parseArgs(R.Args, Cli);
  if (!Parsed.Ok)
    return encodeError(Parsed.Error);
  if (Parsed.ShowHelp)
    return encodeError("astral serve: --help is not a remote request");
  if (!Cli.InputPaths.empty())
    return encodeError("astral serve: analyze 'args' must contain only "
                       "flags; files travel in 'files'");

  std::string ErrText;
  for (const std::string &W : Parsed.Warnings)
    ErrText += W + "\n";

  std::vector<std::string> Paths;
  std::vector<AnalysisInput> Inputs;
  uint64_t DeadlineMs = 0;
  for (const FilePayload &F : R.Files) {
    AnalysisInput In;
    In.FileName = F.Path;
    In.Source = F.Source;
    In.Headers = F.Headers;
    std::vector<std::string> Warnings;
    In.Options = cli::assembleOptions(Cli, F.Path, F.Source, Warnings);
    for (const std::string &W : Warnings)
      ErrText += W + "\n";
    // The request-level deadline is the tightest per-file one (flags apply
    // uniformly today, but the envelope is per-request either way). It is
    // anchored at submit(), i.e. at request arrival: queue wait counts.
    if (In.Options.DeadlineMs &&
        (DeadlineMs == 0 || In.Options.DeadlineMs < DeadlineMs))
      DeadlineMs = In.Options.DeadlineMs;
    Paths.push_back(F.Path);
    Inputs.push_back(std::move(In));
  }

  RequestQueue::Outcome Out;
  try {
    Out = Queue->submit(std::move(Inputs), R.Priority, DeadlineMs).get();
  } catch (const std::exception &E) {
    return encodeError(E.what(), "internal");
  }
  if (!Out.ok()) {
    if (Cfg.Verbose)
      std::fprintf(stderr, "astral serve: request failed (%s): %s\n",
                   Out.ErrorKind.c_str(), Out.ErrorMessage.c_str());
    return encodeError(Out.ErrorMessage, Out.ErrorKind);
  }

  cli::RunOutput RO = cli::renderRun(Cli, Paths, Out.Results);

  JsonValue Doc = JsonValue::object();
  Doc["ok"] = JsonValue(true);
  Doc["op"] = JsonValue("analyze");
  Doc["schema_version"] = JsonValue(uint64_t(ReportSchemaVersion));
  Doc["exit_code"] = JsonValue(int64_t(RO.ExitCode));
  Doc["stdout"] = JsonValue(RO.Out);
  Doc["stderr"] = JsonValue(ErrText + RO.Err);
  JsonValue CacheV = JsonValue::object();
  CacheV["frontend_hits"] = JsonValue(Out.FrontendHits);
  CacheV["frontend_misses"] = JsonValue(Out.FrontendMisses);
  CacheV["packing_hits"] = JsonValue(Out.PackingHits);
  CacheV["packing_misses"] = JsonValue(Out.PackingMisses);
  Doc["cache"] = std::move(CacheV);
  return Doc.serialize();
}

std::string Server::handleStatus() {
  JsonValue Doc = JsonValue::object();
  Doc["ok"] = JsonValue(true);
  Doc["op"] = JsonValue("status");
  Doc["schema_version"] = JsonValue(uint64_t(ReportSchemaVersion));
  Doc["pid"] = JsonValue(int64_t(::getpid()));
  Doc["jobs"] = JsonValue(uint64_t(Pool->concurrency()));
  Doc["requests_served"] = JsonValue(Queue->jobsServed());
  Doc["socket"] = JsonValue(Cfg.SocketPath);
  return Doc.serialize();
}

std::string Server::handleCacheStats() {
  // Flat keys on purpose: the CI smoke greps these counters straight out of
  // the response line.
  ArtifactCache::Stats S = Cache.stats();
  JsonValue Doc = JsonValue::object();
  Doc["ok"] = JsonValue(true);
  Doc["op"] = JsonValue("cache-stats");
  Doc["schema_version"] = JsonValue(uint64_t(ReportSchemaVersion));
  Doc["frontend_hits"] = JsonValue(S.FrontendHits);
  Doc["frontend_misses"] = JsonValue(S.FrontendMisses);
  Doc["frontend_entries"] = JsonValue(uint64_t(Cache.frontendEntries()));
  Doc["packing_hits"] = JsonValue(S.PackingHits);
  Doc["packing_misses"] = JsonValue(S.PackingMisses);
  Doc["packing_entries"] = JsonValue(uint64_t(Cache.packingEntries()));
  Doc["evictions"] = JsonValue(S.Evictions);
  Doc["max_entries"] = JsonValue(uint64_t(Cache.maxEntries()));
  return Doc.serialize();
}

//===----------------------------------------------------------------------===//
// The `serve` subcommand
//===----------------------------------------------------------------------===//

namespace {

Server *SignalTarget = nullptr;

void stopOnSignal(int) {
  if (SignalTarget)
    SignalTarget->requestStop(); // write(2) only — async-signal-safe.
}

std::optional<unsigned> parseUnsigned(const std::string &V) {
  try {
    size_t End = 0;
    unsigned long X = std::stoul(V, &End);
    if (End != V.size() || X > 0xffffffffUL)
      return std::nullopt;
    return unsigned(X);
  } catch (const std::exception &) {
    return std::nullopt;
  }
}

} // namespace

int runServeCommand(const std::vector<std::string> &Args) {
  ServerConfig Cfg;
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Value = [&](const char *Prefix) -> std::optional<std::string> {
      if (A.rfind(Prefix, 0) == 0)
        return A.substr(std::strlen(Prefix));
      return std::nullopt;
    };
    if (auto V = Value("--socket=")) {
      Cfg.SocketPath = *V;
    } else if (auto V = Value("--jobs=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N > Scheduler::MaxThreads) {
        std::fprintf(stderr,
                     "astral serve: error: --jobs expects an integer in "
                     "[0, %u], got '%s'\n",
                     Scheduler::MaxThreads, V->c_str());
        return 1;
      }
      Cfg.Jobs = *N;
    } else if (auto V = Value("--cache-entries=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0) {
        std::fprintf(stderr,
                     "astral serve: error: --cache-entries expects a "
                     "positive integer, got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cfg.CacheEntries = *N;
    } else if (auto V = Value("--max-request-mb=")) {
      std::optional<unsigned> N = parseUnsigned(*V);
      if (!N || *N == 0) {
        std::fprintf(stderr,
                     "astral serve: error: --max-request-mb expects a "
                     "positive integer, got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cfg.MaxRequestBytes = size_t(*N) << 20;
    } else if (A == "--quiet") {
      Cfg.Verbose = false;
    } else {
      std::fprintf(stderr, "astral serve: error: unknown argument '%s'\n",
                   A.c_str());
      return 1;
    }
  }
  if (Cfg.SocketPath.empty()) {
    std::fprintf(stderr, "astral serve: error: --socket=<path> is required\n");
    return 1;
  }

  Server S(Cfg);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  if (Cfg.Verbose)
    std::fprintf(stderr,
                 "astral serve: listening on %s (jobs=%u, cache-entries=%zu, "
                 "schema %u)\n",
                 Cfg.SocketPath.c_str(),
                 Scheduler::effectiveJobs(Cfg.Jobs), Cfg.CacheEntries,
                 unsigned(ReportSchemaVersion));

  SignalTarget = &S;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = stopOnSignal;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);

  int Rc = S.wait();
  SignalTarget = nullptr;
  return Rc;
}

} // namespace service
} // namespace astral
