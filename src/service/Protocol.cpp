//===- service/Protocol.cpp - Daemon wire protocol --------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

namespace astral {
namespace service {

const char *opName(Request::Op Op) {
  switch (Op) {
  case Request::Op::Analyze: return "analyze";
  case Request::Op::Status: return "status";
  case Request::Op::CacheStats: return "cache-stats";
  case Request::Op::Shutdown: return "shutdown";
  }
  return "?";
}

std::optional<Request> decodeRequest(const std::string &Line,
                                     std::string &Err) {
  std::optional<JsonValue> Doc = JsonValue::parse(Line, Err);
  if (!Doc)
    return std::nullopt;
  if (!Doc->isObject()) {
    Err = "request is not a JSON object";
    return std::nullopt;
  }

  const JsonValue *OpV = Doc->find("op");
  if (!OpV || !OpV->isString()) {
    Err = "request has no string 'op'";
    return std::nullopt;
  }

  Request R;
  const std::string &Op = OpV->asString();
  if (Op == "analyze")
    R.Operation = Request::Op::Analyze;
  else if (Op == "status")
    R.Operation = Request::Op::Status;
  else if (Op == "cache-stats")
    R.Operation = Request::Op::CacheStats;
  else if (Op == "shutdown")
    R.Operation = Request::Op::Shutdown;
  else {
    Err = "unknown op '" + Op + "'";
    return std::nullopt;
  }

  if (const JsonValue *Args = Doc->find("args")) {
    if (!Args->isArray()) {
      Err = "'args' must be an array of strings";
      return std::nullopt;
    }
    for (const JsonValue &A : Args->items()) {
      if (!A.isString()) {
        Err = "'args' must be an array of strings";
        return std::nullopt;
      }
      R.Args.push_back(A.asString());
    }
  }

  if (const JsonValue *Pr = Doc->find("priority")) {
    // Bounded integer: a priority is a scheduling weight, not a payload, so
    // a fractional or astronomically large value is a client bug.
    double V = Pr->isNumber() ? Pr->asNumber() : 0.5;
    if (V != double(int(V)) || V < -1000000 || V > 1000000) {
      Err = "'priority' must be an integer in [-1000000, 1000000]";
      return std::nullopt;
    }
    R.Priority = int(V);
  }

  if (const JsonValue *Files = Doc->find("files")) {
    if (!Files->isArray()) {
      Err = "'files' must be an array";
      return std::nullopt;
    }
    for (const JsonValue &F : Files->items()) {
      if (!F.isObject()) {
        Err = "each file must be an object";
        return std::nullopt;
      }
      FilePayload P;
      const JsonValue *Path = F.find("path");
      const JsonValue *Source = F.find("source");
      if (!Path || !Path->isString() || !Source || !Source->isString()) {
        Err = "each file needs string 'path' and 'source'";
        return std::nullopt;
      }
      P.Path = Path->asString();
      P.Source = Source->asString();
      if (const JsonValue *Headers = F.find("headers")) {
        if (!Headers->isObject()) {
          Err = "'headers' must be an object";
          return std::nullopt;
        }
        for (const auto &[Name, Text] : Headers->members()) {
          if (!Text.isString()) {
            Err = "header '" + Name + "' must be a string";
            return std::nullopt;
          }
          P.Headers[Name] = Text.asString();
        }
      }
      R.Files.push_back(std::move(P));
    }
  }

  if (R.Operation == Request::Op::Analyze && R.Files.empty()) {
    Err = "analyze request without files";
    return std::nullopt;
  }
  return R;
}

std::string encodeRequest(const Request &R) {
  JsonValue Doc = JsonValue::object();
  Doc["op"] = JsonValue(std::string(opName(R.Operation)));
  if (R.Priority != 0)
    Doc["priority"] = JsonValue(int64_t(R.Priority));
  if (!R.Args.empty()) {
    JsonValue Args = JsonValue::array();
    for (const std::string &A : R.Args)
      Args.push(JsonValue(A));
    Doc["args"] = std::move(Args);
  }
  if (!R.Files.empty()) {
    JsonValue Files = JsonValue::array();
    for (const FilePayload &F : R.Files) {
      JsonValue FV = JsonValue::object();
      FV["path"] = JsonValue(F.Path);
      FV["source"] = JsonValue(F.Source);
      if (!F.Headers.empty()) {
        JsonValue HV = JsonValue::object();
        for (const auto &[Name, Text] : F.Headers)
          HV[Name] = JsonValue(Text);
        FV["headers"] = std::move(HV);
      }
      Files.push(std::move(FV));
    }
    Doc["files"] = std::move(Files);
  }
  return Doc.serialize();
}

std::string encodeError(const std::string &Message, const std::string &Kind) {
  JsonValue Doc = JsonValue::object();
  Doc["ok"] = JsonValue(false);
  Doc["error"] = JsonValue(Message);
  Doc["error_kind"] = JsonValue(Kind);
  return Doc.serialize();
}

bool validUtf8(const std::string &S) {
  size_t I = 0, N = S.size();
  while (I < N) {
    unsigned char C = static_cast<unsigned char>(S[I]);
    size_t Len;
    uint32_t Min;
    if (C < 0x80) {
      ++I;
      continue;
    } else if ((C & 0xe0) == 0xc0) {
      Len = 1; Min = 0x80;
    } else if ((C & 0xf0) == 0xe0) {
      Len = 2; Min = 0x800;
    } else if ((C & 0xf8) == 0xf0) {
      Len = 3; Min = 0x10000;
    } else {
      return false; // Continuation byte or 5+-byte lead: never valid here.
    }
    if (I + Len >= N)
      return false; // Truncated sequence at end of string.
    uint32_t Cp = C & (0x3f >> Len);
    for (size_t K = 1; K <= Len; ++K) {
      unsigned char Cont = static_cast<unsigned char>(S[I + K]);
      if ((Cont & 0xc0) != 0x80)
        return false;
      Cp = (Cp << 6) | (Cont & 0x3f);
    }
    if (Cp < Min || Cp > 0x10ffff || (Cp >= 0xd800 && Cp <= 0xdfff))
      return false; // Overlong, out of range, or a surrogate half.
    I += Len + 1;
  }
  return true;
}

} // namespace service
} // namespace astral
