//===- service/Client.h - astral-cli client mode -----------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's counterpart: `astral-cli client --socket=PATH <op> ...`
/// connects to a running `astral serve`, ships one request line, and
/// renders the response. For `analyze` the client does all path-shaped work
/// locally (file reading, C++-harness extraction, #include preloading — via
/// the shared cli layer) and forwards the verbatim flag tokens, so the
/// daemon sees exactly what the one-shot driver would have parsed; the
/// response's stdout/stderr fields are printed verbatim and the embedded
/// exit code becomes the process exit code. A schema_version mismatch (a
/// daemon of another build vintage) is refused instead of misread.
///
/// Robustness: ConnectOptions buys bounded exponential-backoff-with-jitter
/// connect retries, per-call socket I/O timeouts (SO_RCVTIMEO/SO_SNDTIMEO),
/// and transparent retry of transport failures (send/recv errors, a torn
/// response frame) for idempotent operations — analyze, status,
/// cache-stats; never shutdown, which must not be replayed. Every retry
/// reconnects with a fresh stream (stale carried bytes are discarded), and
/// retriesUsed() exposes the count so tests can pin the behavior.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_CLIENT_H
#define ASTRAL_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace astral {
namespace service {

/// Retry/timeout policy for one Client. The defaults (no retries, no
/// timeouts) reproduce the original fail-fast behavior.
struct ConnectOptions {
  /// Extra attempts after a failed connect — and the transport-retry
  /// budget of roundTrip for idempotent operations. 0 = fail fast.
  unsigned Retries = 0;
  /// Delay before the first retry; doubles per attempt, plus up to 50%
  /// random jitter so a fleet of clients does not reconnect in lockstep.
  unsigned BackoffBaseMs = 25;
  /// SO_RCVTIMEO/SO_SNDTIMEO on the socket; 0 = block forever. A timed-out
  /// call surfaces as a transport failure (and is thus retryable).
  unsigned IoTimeoutMs = 0;
};

/// One connection to a serve daemon. Multiple roundTrips may share the
/// connection (the daemon answers lines in order per connection).
class Client {
public:
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon's socket; null + \p Err on failure (after
  /// \p Opts.Retries backoff rounds, when configured).
  static std::unique_ptr<Client> connect(const std::string &SocketPath,
                                         std::string &Err,
                                         const ConnectOptions &Opts = {});

  /// Sends \p R as one line and reads one response line, parsed as JSON.
  /// nullopt + \p Err on transport or parse failure. Transport failures of
  /// idempotent operations are retried on a fresh connection up to
  /// Opts.Retries times; a shutdown is never replayed.
  std::optional<JsonValue> roundTrip(const Request &R, std::string &Err);

  /// Transport retries + reconnects this client has performed (test
  /// observability for the chaos suite).
  unsigned retriesUsed() const { return Retries; }

private:
  Client(int Fd, std::string SocketPath, ConnectOptions Opts)
      : Fd(Fd), SocketPath(std::move(SocketPath)), Opts(Opts) {}

  std::optional<JsonValue> tryRoundTrip(const Request &R, std::string &Err);

  int Fd;
  std::string SocketPath; ///< For reconnects after transport failures.
  ConnectOptions Opts;
  unsigned Retries = 0;  ///< Retries spent so far (see retriesUsed).
  std::string Carry; ///< Bytes read past the last consumed newline.
};

/// The `astral-cli client` subcommand: --socket=PATH (plus the optional
/// transport knobs --connect-retries=N and --io-timeout-ms=N) then one of
/// analyze|status|cache-stats|shutdown (analyze takes the one-shot driver's
/// flags and input paths, plus --priority=N to jump — or, negative, yield
/// to — the daemon's queue). Returns the process exit code; a daemon
/// refusal carrying error_kind timeout/over-budget/cancelled exits 4 like
/// the one-shot driver.
int runClientCommand(const std::vector<std::string> &Args);

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_CLIENT_H
