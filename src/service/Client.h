//===- service/Client.h - astral-cli client mode -----------------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's counterpart: `astral-cli client --socket=PATH <op> ...`
/// connects to a running `astral serve`, ships one request line, and
/// renders the response. For `analyze` the client does all path-shaped work
/// locally (file reading, C++-harness extraction, #include preloading — via
/// the shared cli layer) and forwards the verbatim flag tokens, so the
/// daemon sees exactly what the one-shot driver would have parsed; the
/// response's stdout/stderr fields are printed verbatim and the embedded
/// exit code becomes the process exit code. A schema_version mismatch (a
/// daemon of another build vintage) is refused instead of misread.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SERVICE_CLIENT_H
#define ASTRAL_SERVICE_CLIENT_H

#include "service/Protocol.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace astral {
namespace service {

/// One connection to a serve daemon. Multiple roundTrips may share the
/// connection (the daemon answers lines in order per connection).
class Client {
public:
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon's socket; null + \p Err on failure.
  static std::unique_ptr<Client> connect(const std::string &SocketPath,
                                         std::string &Err);

  /// Sends \p R as one line and reads one response line, parsed as JSON.
  /// nullopt + \p Err on transport or parse failure.
  std::optional<JsonValue> roundTrip(const Request &R, std::string &Err);

private:
  explicit Client(int Fd) : Fd(Fd) {}

  int Fd;
  std::string Carry; ///< Bytes read past the last consumed newline.
};

/// The `astral-cli client` subcommand: --socket=PATH then one of
/// analyze|status|cache-stats|shutdown (analyze takes the one-shot driver's
/// flags and input paths, plus --priority=N to jump — or, negative, yield
/// to — the daemon's queue). Returns the process exit code.
int runClientCommand(const std::vector<std::string> &Args);

} // namespace service
} // namespace astral

#endif // ASTRAL_SERVICE_CLIENT_H
