//===- service/ArtifactCache.cpp - Content-hash artifact cache --------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/ArtifactCache.h"

#include "support/FaultInjection.h"

#include <algorithm>

namespace astral {
namespace service {

ArtifactCache::ArtifactCache(size_t MaxEntries)
    : Max(std::max<size_t>(1, MaxEntries)) {}

std::shared_ptr<const AnalysisSession::FrontendPhase>
ArtifactCache::lookupFrontend(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  if (auto *V = Frontends.touch(Key)) {
    ++Counters.FrontendHits;
    return *V;
  }
  ++Counters.FrontendMisses;
  return nullptr;
}

std::optional<ArtifactCache::PackingArtifact>
ArtifactCache::lookupPacking(const std::string &Key) {
  std::lock_guard<std::mutex> L(Mu);
  if (auto *V = Packings.touch(Key)) {
    ++Counters.PackingHits;
    return *V;
  }
  ++Counters.PackingMisses;
  return std::nullopt;
}

void ArtifactCache::storeFrontend(
    const std::string &Key,
    std::shared_ptr<const AnalysisSession::FrontendPhase> F) {
  if (!F)
    return;
  // Chaos site: an insert failing (allocation, a future persistent backend)
  // must fail the one storing request, never poison the cache or daemon.
  faultinject::fire("cache-insert");
  std::lock_guard<std::mutex> L(Mu);
  if (Frontends.put(Key, std::move(F), Max))
    ++Counters.Evictions;
}

void ArtifactCache::storePacking(const std::string &Key, PackingArtifact P) {
  if (!P.Layout || !P.Packs)
    return;
  faultinject::fire("cache-insert");
  std::lock_guard<std::mutex> L(Mu);
  if (Packings.put(Key, std::move(P), Max))
    ++Counters.Evictions;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Counters;
}

size_t ArtifactCache::frontendEntries() const {
  std::lock_guard<std::mutex> L(Mu);
  return Frontends.Map.size();
}

size_t ArtifactCache::packingEntries() const {
  std::lock_guard<std::mutex> L(Mu);
  return Packings.Map.size();
}

} // namespace service
} // namespace astral
