//===- service/Client.cpp - astral-cli client mode --------------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "analyzer/AnalysisSession.h"
#include "analyzer/CliOptions.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace astral {
namespace service {

namespace {

/// One connect attempt; -1 + \p Err on failure. Applies the I/O timeouts
/// right away so even the first exchange is bounded.
int openSocket(const std::string &SocketPath, const ConnectOptions &Opts,
               std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "astral client: socket path must be 1.." +
          std::to_string(sizeof(Addr.sun_path) - 1) + " bytes";
    return -1;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("astral client: socket: ") + std::strerror(errno);
    return -1;
  }
  if (Opts.IoTimeoutMs) {
    timeval Tv;
    Tv.tv_sec = Opts.IoTimeoutMs / 1000;
    Tv.tv_usec = suseconds_t(Opts.IoTimeoutMs % 1000) * 1000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Err = "astral client: cannot connect to " + SocketPath + ": " +
          std::strerror(errno) + " (is `astral-cli serve` running?)";
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Exponential backoff with jitter: BackoffBaseMs * 2^Attempt, plus up to
/// 50% random extra, so retrying clients spread out instead of stampeding.
void backoffSleep(const ConnectOptions &Opts, unsigned Attempt) {
  uint64_t Base = uint64_t(Opts.BackoffBaseMs) << (Attempt > 10 ? 10 : Attempt);
  static thread_local std::mt19937_64 Rng{std::random_device{}()};
  uint64_t Jitter = Base ? Rng() % (Base / 2 + 1) : 0;
  std::this_thread::sleep_for(std::chrono::milliseconds(Base + Jitter));
}

} // namespace

Client::~Client() {
  if (Fd != -1)
    ::close(Fd);
}

std::unique_ptr<Client> Client::connect(const std::string &SocketPath,
                                        std::string &Err,
                                        const ConnectOptions &Opts) {
  for (unsigned Attempt = 0;; ++Attempt) {
    int Fd = openSocket(SocketPath, Opts, Err);
    if (Fd >= 0)
      return std::unique_ptr<Client>(new Client(Fd, SocketPath, Opts));
    if (Attempt >= Opts.Retries)
      return nullptr;
    backoffSleep(Opts, Attempt);
  }
}

std::optional<JsonValue> Client::roundTrip(const Request &R,
                                           std::string &Err) {
  // Shutdown is the one non-idempotent operation: replaying it against a
  // daemon that already acknowledged (on a frame we lost) would stop a
  // *new* daemon. Everything else is safe to retry on a fresh connection.
  const bool Retryable = R.Operation != Request::Op::Shutdown;
  for (unsigned Attempt = 0;; ++Attempt) {
    std::optional<JsonValue> Doc = tryRoundTrip(R, Err);
    if (Doc)
      return Doc;
    if (!Retryable || Attempt >= Opts.Retries)
      return std::nullopt;
    ++Retries;
    backoffSleep(Opts, Attempt);
    // Fresh stream: the old one may hold half a response; carrying those
    // bytes over would desynchronize the framing forever.
    if (Fd != -1)
      ::close(Fd);
    Carry.clear();
    std::string ConnErr;
    Fd = openSocket(SocketPath, Opts, ConnErr);
    if (Fd == -1)
      Err = ConnErr; // Reported if this was the last attempt.
  }
}

std::optional<JsonValue> Client::tryRoundTrip(const Request &R,
                                              std::string &Err) {
  if (Fd == -1) {
    Err = "astral client: not connected";
    return std::nullopt;
  }
  std::string Line = encodeRequest(R);
  Line += '\n';
  size_t Sent = 0;
  while (Sent < Line.size()) {
    ssize_t W = ::send(Fd, Line.data() + Sent, Line.size() - Sent,
                       MSG_NOSIGNAL);
    if (W <= 0) {
      Err = std::string("astral client: send: ") + std::strerror(errno);
      return std::nullopt;
    }
    Sent += size_t(W);
  }

  char Chunk[65536];
  size_t Nl;
  while ((Nl = Carry.find('\n')) == std::string::npos) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      Err = std::string("astral client: recv: ") + std::strerror(errno);
      return std::nullopt;
    }
    if (N == 0) {
      Err = "astral client: daemon closed the connection mid-response";
      return std::nullopt;
    }
    Carry.append(Chunk, size_t(N));
  }
  std::string Response = Carry.substr(0, Nl);
  Carry.erase(0, Nl + 1);

  std::string ParseErr;
  std::optional<JsonValue> Doc = JsonValue::parse(Response, ParseErr);
  if (!Doc) {
    Err = "astral client: malformed response: " + ParseErr;
    return std::nullopt;
  }
  return Doc;
}

//===----------------------------------------------------------------------===//
// The `client` subcommand
//===----------------------------------------------------------------------===//

namespace {

/// Checks ok/error and the schema vintage; on failure prints to stderr and
/// returns the process exit code (0 = response is good). Resource-
/// governance refusals — the daemon saying "your deadline expired" or
/// "your budget burst under --on-budget=fail" — exit with the one-shot
/// driver's code 4, so scripts treat both modes alike.
int vetResponse(const JsonValue &Doc) {
  const JsonValue *Ok = Doc.find("ok");
  if (!Ok || !Ok->isBool() || !Ok->asBool()) {
    const JsonValue *E = Doc.find("error");
    const JsonValue *K = Doc.find("error_kind");
    std::string Kind =
        K && K->isString() ? K->asString() : std::string("internal");
    std::fprintf(stderr, "astral client: daemon error [%s]: %s\n",
                 Kind.c_str(),
                 E && E->isString() ? E->asString().c_str()
                                    : "(malformed error response)");
    return Kind == "timeout" || Kind == "over-budget" || Kind == "cancelled"
               ? 4
               : 1;
  }
  const JsonValue *Ver = Doc.find("schema_version");
  if (!Ver || !Ver->isNumber() ||
      uint64_t(Ver->asNumber()) != ReportSchemaVersion) {
    std::fprintf(stderr,
                 "astral client: daemon speaks report schema %s, this "
                 "client expects %u — restart the daemon from this build\n",
                 Ver && Ver->isNumber()
                     ? std::to_string(uint64_t(Ver->asNumber())).c_str()
                     : "(none)",
                 unsigned(ReportSchemaVersion));
    return 1;
  }
  return 0;
}

int runAnalyze(Client &C, const std::vector<std::string> &Args) {
  // --priority is a client/daemon scheduling hint, not an analyzer flag:
  // peel it off before the shared parser (which would reject it) and ship
  // it in the request envelope instead of the forwarded tokens.
  int Priority = 0;
  std::vector<std::string> DriverArgs;
  for (const std::string &A : Args) {
    if (A.rfind("--priority=", 0) == 0) {
      try {
        size_t End = 0;
        Priority = std::stoi(A.substr(std::strlen("--priority=")), &End);
        if (End != A.size() - std::strlen("--priority="))
          throw std::invalid_argument(A);
      } catch (const std::exception &) {
        std::fprintf(stderr,
                     "astral client: error: --priority expects an integer, "
                     "got '%s'\n",
                     A.c_str());
        return 1;
      }
      continue;
    }
    DriverArgs.push_back(A);
  }

  cli::CliOptions Cli;
  cli::ParseOutcome Parsed = cli::parseArgs(DriverArgs, Cli);
  if (!Parsed.Ok) {
    std::fprintf(stderr, "%s\n", Parsed.Error.c_str());
    return 1;
  }
  if (Parsed.ShowHelp) {
    cli::printUsage(stdout);
    return 0;
  }
  // Deprecation warnings are NOT printed here: the daemon re-parses the
  // forwarded tokens and routes them through the response's stderr field,
  // so printing both would duplicate every line.
  if (Cli.InputPaths.empty()) {
    std::fprintf(stderr, "astral client: error: no input files\n");
    return 1;
  }

  std::vector<std::string> Notes;
  std::string LoadErr;
  std::optional<std::vector<cli::LoadedFile>> Files =
      cli::loadInputFiles(Cli, Notes, LoadErr);
  for (const std::string &N : Notes)
    std::fprintf(stderr, "%s\n", N.c_str());
  if (!Files) {
    std::fprintf(stderr, "%s\n", LoadErr.c_str());
    return 1;
  }

  Request R;
  R.Operation = Request::Op::Analyze;
  R.Args = Cli.FlagArgs;
  R.Priority = Priority;
  for (const cli::LoadedFile &F : *Files)
    R.Files.push_back(FilePayload{F.Path, F.Source, F.Headers});

  std::string Err;
  std::optional<JsonValue> Doc = C.roundTrip(R, Err);
  if (!Doc) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  if (int Rc = vetResponse(*Doc))
    return Rc;

  const JsonValue *Out = Doc->find("stdout");
  const JsonValue *ErrText = Doc->find("stderr");
  const JsonValue *Code = Doc->find("exit_code");
  if (!Out || !Out->isString() || !ErrText || !ErrText->isString() || !Code ||
      !Code->isNumber()) {
    std::fprintf(stderr,
                 "astral client: malformed analyze response (missing "
                 "stdout/stderr/exit_code)\n");
    return 1;
  }
  // Verbatim pass-through: these bytes are what the one-shot driver would
  // have emitted, and the golden suite diffs them.
  std::fwrite(Out->asString().data(), 1, Out->asString().size(), stdout);
  std::fwrite(ErrText->asString().data(), 1, ErrText->asString().size(),
              stderr);
  return int(Code->asNumber());
}

int runSimpleOp(Client &C, Request::Op Op) {
  Request R;
  R.Operation = Op;
  std::string Err;
  std::optional<JsonValue> Doc = C.roundTrip(R, Err);
  if (!Doc) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  if (int Rc = vetResponse(*Doc))
    return Rc;
  // The response object IS the report for these ops; print it as one line
  // so scripts can parse or grep it directly.
  std::string S = Doc->serialize();
  std::fprintf(stdout, "%s\n", S.c_str());
  return 0;
}

} // namespace

int runClientCommand(const std::vector<std::string> &Args) {
  std::string SocketPath;
  ConnectOptions Opts;
  auto ParseU = [](const std::string &V) -> std::optional<unsigned> {
    try {
      size_t End = 0;
      unsigned long X = std::stoul(V, &End);
      if (End != V.size() || X > 0xffffffffUL)
        return std::nullopt;
      return unsigned(X);
    } catch (const std::exception &) {
      return std::nullopt;
    }
  };
  size_t I = 0;
  for (; I < Args.size(); ++I) {
    if (Args[I].rfind("--socket=", 0) == 0) {
      SocketPath = Args[I].substr(std::strlen("--socket="));
    } else if (Args[I].rfind("--connect-retries=", 0) == 0) {
      std::optional<unsigned> N =
          ParseU(Args[I].substr(std::strlen("--connect-retries=")));
      if (!N) {
        std::fprintf(stderr,
                     "astral client: error: --connect-retries expects a "
                     "non-negative integer, got '%s'\n",
                     Args[I].c_str());
        return 1;
      }
      Opts.Retries = *N;
    } else if (Args[I].rfind("--io-timeout-ms=", 0) == 0) {
      std::optional<unsigned> N =
          ParseU(Args[I].substr(std::strlen("--io-timeout-ms=")));
      if (!N) {
        std::fprintf(stderr,
                     "astral client: error: --io-timeout-ms expects a "
                     "non-negative integer, got '%s'\n",
                     Args[I].c_str());
        return 1;
      }
      Opts.IoTimeoutMs = *N;
    } else {
      break;
    }
  }
  if (SocketPath.empty()) {
    std::fprintf(stderr,
                 "astral client: error: --socket=<path> is required "
                 "(before the operation)\n");
    return 1;
  }
  if (I >= Args.size()) {
    std::fprintf(stderr,
                 "astral client: error: expected an operation: analyze, "
                 "status, cache-stats, or shutdown\n");
    return 1;
  }
  const std::string &Op = Args[I];
  std::vector<std::string> Rest(Args.begin() + ptrdiff_t(I) + 1, Args.end());

  std::string Err;
  std::unique_ptr<Client> C = Client::connect(SocketPath, Err, Opts);
  if (!C) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }

  if (Op == "analyze")
    return runAnalyze(*C, Rest);
  if (!Rest.empty()) {
    std::fprintf(stderr, "astral client: error: '%s' takes no arguments\n",
                 Op.c_str());
    return 1;
  }
  if (Op == "status")
    return runSimpleOp(*C, Request::Op::Status);
  if (Op == "cache-stats")
    return runSimpleOp(*C, Request::Op::CacheStats);
  if (Op == "shutdown")
    return runSimpleOp(*C, Request::Op::Shutdown);
  std::fprintf(stderr,
               "astral client: error: unknown operation '%s' (expected "
               "analyze, status, cache-stats, or shutdown)\n",
               Op.c_str());
  return 1;
}

} // namespace service
} // namespace astral
