//===- codegen/FamilyGenerator.cpp - Synchronous program family --------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "codegen/FamilyGenerator.h"

#include <cstdio>

using namespace astral;
using namespace astral::codegen;

namespace {

/// xorshift64* — deterministic across platforms (std::mt19937 would be too,
/// but the distributions are not; we only need cheap reproducible draws).
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1Dull;
  }
  /// Uniform in [0, N).
  unsigned pick(unsigned N) { return static_cast<unsigned>(next() % N); }
  /// Uniform double in [Lo, Hi].
  double real(double Lo, double Hi) {
    return Lo + (Hi - Lo) * (static_cast<double>(next() >> 11) /
                             9007199254740992.0);
  }
};

struct Builder {
  const GeneratorConfig &Config;
  Rng R;
  FamilyProgram Out;
  std::string Decls;
  std::string Funcs;
  std::string LoopBody;
  std::string InitBody;
  unsigned Counter = 0;

  explicit Builder(const GeneratorConfig &C) : Config(C), R(C.Seed) {}

  std::string id(const char *Prefix) {
    return std::string(Prefix) + std::to_string(Counter);
  }

  void line(std::string &Dst, const std::string &S) {
    Dst += S;
    Dst += '\n';
  }

  void volatileInput(const std::string &Name, const char *Ty, double Lo,
                     double Hi) {
    line(Decls, std::string("volatile ") + Ty + " " + Name + ";");
    Out.VolatileRanges[Name] = Interval(Lo, Hi);
  }

  void call(const std::string &Fn) { line(LoopBody, "    " + Fn + "();"); }

  // ---- Module emitters -------------------------------------------------

  /// Event counter bounded by the synchronous clock (clocked domain).
  void emitCounter() {
    std::string Ev = id("ev"), C = id("cnt"), M = id("mon"), F = id("count");
    volatileInput(Ev, "int", 0, 1);
    line(Decls, "static int " + C + ";");
    line(Decls, "static int " + M + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  if (" + Ev + " > 0) {");
    line(Funcs, "    " + C + " = " + C + " + 1;");
    line(Funcs, "  }");
    line(Funcs, "  " + M + " = " + C + " * 2;");
    line(Funcs, "}");
    call(F);
  }

  /// Second-order digital filter with reinitialization (Fig. 1; ellipsoid
  /// domain). Coefficients satisfy 0 < b < 1 and a^2 < 4b.
  void emitFilter() {
    std::string In = id("fin"), Rst = id("frst"), X = id("fx"), Y = id("fy"),
                O = id("fout"), F = id("filter");
    double B = R.real(0.55, 0.85);
    double A = R.real(0.2, 1.8) * std::sqrt(B); // a < 2*sqrt(b).
    char ABuf[32], BBuf[32];
    std::snprintf(ABuf, sizeof(ABuf), "%.6ff", A);
    std::snprintf(BBuf, sizeof(BBuf), "%.6ff", B);
    volatileInput(In, "float", -1.0, 1.0);
    volatileInput(Rst, "int", 0, 1);
    line(Decls, "static float " + X + ", " + Y + ";");
    line(Decls, "static float " + O + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  float t = " + In + ";");
    line(Funcs, "  if (" + Rst + " != 0) {");
    line(Funcs, "    " + Y + " = t;");
    line(Funcs, "    " + X + " = t;");
    line(Funcs, "  } else {");
    line(Funcs, "    float xn = " + std::string(ABuf) + " * " + X + " - " +
                    BBuf + " * " + Y + " + t;");
    line(Funcs, "    " + Y + " = " + X + ";");
    line(Funcs, "    " + X + " = xn;");
    line(Funcs, "  }");
    line(Funcs, "  " + O + " = " + X + " * 0.5f;");
    line(Funcs, "}");
    call(F);
  }

  /// Rate limiter with feedback state (octagon domain: the upper bound of
  /// the state needs u2 <= u, derived by closure from the guard).
  void emitLimiter() {
    std::string In = id("lin"), Y = id("ly"), Cmd = id("lcmd"),
                Tab = id("ltab"), F = id("limit");
    volatileInput(In, "float", -100.0, 100.0);
    line(Decls, "static float " + Y + ";");
    line(Decls, "static float " + Cmd + ";");
    line(Decls, "static const float " + Tab + "[32] = {");
    std::string Row = "  ";
    for (int I = 0; I < 32; ++I) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "%.3ff,", R.real(-1.0, 1.0));
      Row += Buf;
    }
    line(Decls, Row);
    line(Decls, "};");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  float u = " + In + ";");
    line(Funcs, "  if (u - " + Y + " > 8.0f) {");
    line(Funcs, "    " + Y + " = " + Y + " + 8.0f;");
    line(Funcs, "  } else {");
    line(Funcs, "    if (" + Y + " - u > 8.0f) {");
    line(Funcs, "      " + Y + " = " + Y + " - 8.0f;");
    line(Funcs, "    } else {");
    line(Funcs, "      " + Y + " = u;");
    line(Funcs, "    }");
    line(Funcs, "  }");
    // Index derivation: safe only when the state is bounded (|y| <= 100
    // and change of scale keeps the subscript within [0, 31]).
    line(Funcs, "  int idx = (int)((" + Y + " + 100.0f) * 0.155f);");
    line(Funcs, "  " + Cmd + " = " + Tab + "[idx];");
    line(Funcs, "}");
    call(F);
  }

  /// Boolean-guarded division (decision-tree domain): the classic
  ///   B := (X == 0); if (!B) ... 1/X ...
  void emitLogic() {
    std::string S = id("sens"), B = id("bz"), Q = id("quot"), F = id("logic");
    volatileInput(S, "int", 0, 10);
    line(Decls, "static _Bool " + B + ";");
    line(Decls, "static int " + Q + ";");
    line(Funcs, "static void " + F + "(void) {");
    // The volatile is read once into a local: a second read could yield a
    // different value and void the boolean guard (real volatile semantics —
    // the analyzer reports exactly that if the sampling is skipped).
    line(Funcs, "  int s = " + S + ";");
    line(Funcs, "  " + B + " = (s == 0);");
    line(Funcs, "  if (!" + B + ") {");
    line(Funcs, "    " + Q + " = 1000 / s;");
    line(Funcs, "  } else {");
    line(Funcs, "    " + Q + " = 0;");
    line(Funcs, "  }");
    line(Funcs, "}");
    call(F);
  }

  /// Self-dependent float update (linearization, Sect. 6.3's example).
  void emitDecay() {
    std::string D = id("dk"), Bl = id("blend"), F = id("decay");
    line(Decls, "static float " + D + ";");
    line(Decls, "static float " + Bl + ";");
    line(InitBody, "  " + D + " = 1.0f;");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  " + D + " = " + D + " - 0.2f * " + D + ";");
    line(Funcs, "  " + Bl + " = " + D + " * 100.0f;");
    line(Funcs, "}");
    call(F);
  }

  /// Mode-correlated branches (trace partitioning, Sect. 7.1.5).
  void emitSelector() {
    std::string M = id("mode"), In = id("sig"), O = id("sout"),
                F = id("select");
    volatileInput(M, "int", 0, 3);
    volatileInput(In, "float", -50.0, 50.0);
    line(Decls, "static float " + O + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  float scale;");
    line(Funcs, "  float denom;");
    line(Funcs, "  if (" + M + " == 1) {");
    line(Funcs, "    scale = 0.5f;");
    line(Funcs, "  } else {");
    line(Funcs, "    if (" + M + " == 2) {");
    line(Funcs, "      scale = 2.0f;");
    line(Funcs, "    } else {");
    line(Funcs, "      scale = 1.0f;");
    line(Funcs, "    }");
    line(Funcs, "  }");
    line(Funcs, "  if (" + M + " == 1) {");
    line(Funcs, "    denom = scale - 2.0f;");
    line(Funcs, "  } else {");
    line(Funcs, "    denom = scale + 1.0f;");
    line(Funcs, "  }");
    line(Funcs, "  " + O + " = " + In + " / denom;");
    line(Funcs, "}");
    call(F);
    Out.PartitionFunctions.insert(F);
  }

  /// First-order integrator (widening with thresholds, Sect. 7.1.2: the
  /// bound M = max |beta| / (1 - alpha) must be crossed by a threshold).
  void emitIntegrator() {
    std::string E = id("err"), I = id("integ"), F = id("integrate");
    volatileInput(E, "float", -10.0, 10.0);
    line(Decls, "static float " + I + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  " + I + " = 0.9f * " + I + " + " + E + ";");
    line(Funcs, "}");
    call(F);
    Out.DocumentedThresholds.push_back(128.0); // M = 10 / 0.1 = 100.
  }

  /// The paper's delayed-widening cascade (7.1.3): X := Y + g; Y := aX + h.
  void emitCascade() {
    std::string G = id("cg"), H = id("ch"), X = id("cx"), Y = id("cy"),
                F = id("cascade");
    volatileInput(G, "float", -1.0, 1.0);
    volatileInput(H, "float", -1.0, 1.0);
    line(Decls, "static float " + X + ", " + Y + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  " + X + " = " + Y + " + " + G + ";");
    line(Funcs, "  " + Y + " = 0.5f * " + X + " + " + H + ";");
    line(Funcs, "}");
    call(F);
    Out.DocumentedThresholds.push_back(8.0); // |Y| <= 3, |X| <= 4.
  }

  /// Interpolation over a constant table (safe subscripts; volume and
  /// checking-mode coverage).
  void emitInterpolation() {
    std::string In = id("pos"), O = id("val"), Tab = id("itab"),
                F = id("interp");
    volatileInput(In, "float", 0.0, 7.5);
    line(Decls, "static float " + O + ";");
    std::string Row = "static const float " + Tab + "[9] = { ";
    for (int I = 0; I < 9; ++I) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "%.3ff, ", R.real(0.0, 4.0));
      Row += Buf;
    }
    line(Decls, Row + "};");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  float x = " + In + ";");
    line(Funcs, "  int i = (int)x;");
    line(Funcs, "  if (i < 0) { i = 0; }");
    line(Funcs, "  if (i > 7) { i = 7; }");
    line(Funcs, "  float frac = x - (float)i;");
    line(Funcs, "  " + O + " = " + Tab + "[i] + (" + Tab + "[i + 1] - " +
                    Tab + "[i]) * frac;");
    line(Funcs, "}");
    call(F);
  }

  /// Guarded division (safe; checking-mode volume).
  void emitSafeDiv() {
    std::string N = id("num"), D = id("den"), Q = id("ratio"),
                F = id("divide");
    volatileInput(N, "int", -1000, 1000);
    volatileInput(D, "int", 0, 100);
    line(Decls, "static int " + Q + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  int n = " + N + ";");
    line(Funcs, "  int d = " + D + ";"); // Sample once: volatile semantics.
    line(Funcs, "  if (d > 1) {");
    line(Funcs, "    " + Q + " = n / d;");
    line(Funcs, "  }");
    line(Funcs, "}");
    call(F);
  }

  /// Unused "hardware description" table (deleted by the Sect. 5.1 census).
  void emitDeadTable() {
    std::string Tab = id("hw");
    std::string Row = "static const int " + Tab + "[16] = { ";
    for (int I = 0; I < 16; ++I)
      Row += std::to_string(R.pick(4096)) + ", ";
    line(Decls, Row + "};");
  }

  /// A genuine bug: division whose divisor range includes zero (for
  /// soundness tests: the alarm must survive every configuration).
  void emitInjectedBug() {
    std::string D = id("bug_den"), Q = id("bug_q"), F = id("buggy");
    volatileInput(D, "int", 0, 4);
    line(Decls, "static int " + Q + ";");
    line(Funcs, "static void " + F + "(void) {");
    line(Funcs, "  " + Q + " = 7 / " + D + "; /* real division by zero */");
    line(Funcs, "}");
    call(F);
  }

  unsigned approxLines() const {
    return static_cast<unsigned>(
        std::count(Decls.begin(), Decls.end(), '\n') +
        std::count(Funcs.begin(), Funcs.end(), '\n') +
        std::count(LoopBody.begin(), LoopBody.end(), '\n') +
        std::count(InitBody.begin(), InitBody.end(), '\n') + 24);
  }

  FamilyProgram build() {
    line(Decls, "/* Generated member of the periodic synchronous program");
    line(Decls, "   family (seed " + std::to_string(Config.Seed) + "). */");

    for (unsigned B = 0; B < Config.InjectedBugs; ++B) {
      ++Counter;
      emitInjectedBug();
      ++Out.ModuleCount;
    }
    while (approxLines() < Config.TargetLines) {
      ++Counter;
      switch (R.pick(10)) {
      case 0: emitCounter(); break;
      case 1: emitFilter(); break;
      case 2: emitLimiter(); break;
      case 3: emitLogic(); break;
      case 4: emitDecay(); break;
      case 5: emitSelector(); break;
      case 6: emitIntegrator(); break;
      case 7: emitCascade(); break;
      case 8: emitInterpolation(); break;
      case 9: emitSafeDiv(); break;
      }
      if (R.pick(4) == 0)
        emitDeadTable();
      ++Out.ModuleCount;
    }

    Out.Source = Decls;
    Out.Source += Funcs;
    Out.Source += "static void init_states(void) {\n";
    Out.Source += InitBody;
    Out.Source += "}\n";
    Out.Source += "int main(void) {\n";
    Out.Source += "  init_states();\n";
    Out.Source += "  while (1) {\n";
    Out.Source += LoopBody;
    Out.Source += "    __astral_wait();\n";
    Out.Source += "  }\n";
    Out.Source += "  return 0;\n";
    Out.Source += "}\n";
    Out.LineCount = static_cast<unsigned>(
        std::count(Out.Source.begin(), Out.Source.end(), '\n'));
    return std::move(Out);
  }
};

} // namespace

FamilyProgram codegen::generateFamilyProgram(const GeneratorConfig &Config) {
  Builder B(Config);
  return B.build();
}
