//===- codegen/FamilyGenerator.h - Synchronous program family ----*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator for the considered family of programs (Sect. 4):
/// periodic synchronous control software of the form
///
///   declare volatile input, state and output variables;
///   initialize state variables;
///   loop forever
///     read volatile inputs; compute outputs and state; write outputs;
///     wait for next clock tick;
///   end loop
///
/// assembled from the code idioms the paper derives its domains from:
///   - second-order digital filters (Fig. 1, needs the ellipsoid domain);
///   - event counters bounded by the clock (clocked domain);
///   - rate limiters with feedback (octagon domain);
///   - boolean-guarded divisions (decision trees);
///   - self-dependent float updates x := x - c*x (linearization);
///   - mode-correlated branch pairs (trace partitioning);
///   - integrators needing widening thresholds / delayed widening;
///   - interpolation tables, clamps, constant tables and glue (volume;
///     includes unused "hardware" arrays the frontend must optimize away).
///
/// The number of global/static variables grows linearly with the code size,
/// matching the paper's characterization of the family. The generator also
/// emits the matching environment specification (volatile input ranges,
/// functions to trace-partition), i.e. the end-user parametrization of
/// Sect. 3.2.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_CODEGEN_FAMILYGENERATOR_H
#define ASTRAL_CODEGEN_FAMILYGENERATOR_H

#include "domains/Interval.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace astral {
namespace codegen {

struct GeneratorConfig {
  /// Approximate size of the generated source, in lines.
  unsigned TargetLines = 5000;
  uint64_t Seed = 42;
  /// Emit genuinely buggy modules (true division by zero) for soundness
  /// tests; off by default (the family "has been running for 10 years
  /// without any run-time error", Sect. 3.1).
  unsigned InjectedBugs = 0;
};

struct FamilyProgram {
  std::string Source;
  /// Environment specification: ranges of the volatile inputs.
  std::map<std::string, Interval> VolatileRanges;
  /// Functions that need trace partitioning (Sect. 7.1.5 is end-user
  /// selected).
  std::set<std::string> PartitionFunctions;
  /// Widening thresholds documented for this program family (Sect. 7.1.2:
  /// "easily found in the program documentation").
  std::vector<double> DocumentedThresholds;
  unsigned ModuleCount = 0;
  unsigned LineCount = 0;
};

/// Generates one member of the program family.
FamilyProgram generateFamilyProgram(const GeneratorConfig &Config);

} // namespace codegen
} // namespace astral

#endif // ASTRAL_CODEGEN_FAMILYGENERATOR_H
