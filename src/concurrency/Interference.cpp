//===- concurrency/Interference.cpp - Shared-cell interference --------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "concurrency/Interference.h"

#include <algorithm>

namespace astral {
namespace concurrency {

/// Strict ordering of alarm anchors: program point first (stable across
/// renders), then source position as a tiebreak for synthetic points.
static bool anchorLess(uint32_t PA, const SourceLocation &LA, uint32_t PB,
                       const SourceLocation &LB) {
  if (PA != PB)
    return PA < PB;
  return LA < LB;
}

bool ThreadAccess::joinInPlace(const ThreadAccess &O) {
  bool Changed = false;
  if (O.Read) {
    if (!Read || anchorLess(O.ReadPoint, O.ReadLoc, ReadPoint, ReadLoc)) {
      ReadPoint = O.ReadPoint;
      ReadLoc = O.ReadLoc;
    }
    Changed |= !Read;
    Read = true;
  }
  if (O.Written) {
    if (!Written ||
        anchorLess(O.WritePoint, O.WriteLoc, WritePoint, WriteLoc)) {
      WritePoint = O.WritePoint;
      WriteLoc = O.WriteLoc;
    }
    Changed |= !Written;
    Written = true;
    Interval Joined = Writes.join(O.Writes);
    Changed |= Joined != Writes;
    Writes = Joined;
  }
  return Changed;
}

bool InterferenceMap::joinInPlace(size_t T, const ThreadInterference &Delta) {
  bool Changed = false;
  ThreadInterference &Dst = Threads[T];
  for (const auto &[C, A] : Delta) {
    auto [It, Inserted] = Dst.try_emplace(C, A);
    if (Inserted)
      Changed = true;
    else
      Changed |= It->second.joinInPlace(A);
  }
  return Changed;
}

bool InterferenceMap::equal(const InterferenceMap &O) const {
  if (Threads.size() != O.Threads.size())
    return false;
  for (size_t T = 0; T < Threads.size(); ++T)
    if (Threads[T] != O.Threads[T])
      return false;
  return true;
}

void InterferenceMap::widenWrites(const InterferenceMap &Prev,
                                  const std::vector<Interval> &CellRange) {
  for (size_t T = 0; T < Threads.size(); ++T) {
    const ThreadInterference &P = Prev.Threads[T];
    for (auto &[C, A] : Threads[T]) {
      if (!A.Written)
        continue;
      auto It = P.find(C);
      // Grew past the previous round: jump to the machine range. A cell
      // first written this round is left alone — it gets one exact round
      // before the cap applies.
      if (It != P.end() && It->second.Written &&
          !A.Writes.leq(It->second.Writes))
        A.Writes = C < CellRange.size() ? CellRange[C] : Interval::top();
    }
  }
}

Interval InterferenceMap::rivalWrites(size_t T, memory::CellId C) const {
  Interval R = Interval::bottom();
  for (size_t O = 0; O < Threads.size(); ++O) {
    if (O == T)
      continue;
    auto It = Threads[O].find(C);
    if (It != Threads[O].end() && It->second.Written)
      R = R.join(It->second.Writes);
  }
  return R;
}

size_t InterferenceMap::interferenceCells() const {
  std::vector<memory::CellId> Cells;
  for (const ThreadInterference &T : Threads)
    for (const auto &[C, A] : T)
      if (A.Written)
        Cells.push_back(C);
  std::sort(Cells.begin(), Cells.end());
  Cells.erase(std::unique(Cells.begin(), Cells.end()), Cells.end());
  return Cells.size();
}

void InterferenceRecorder::recordRead(memory::CellId C, uint32_t Point,
                                      SourceLocation Loc) {
  ThreadAccess A;
  A.Read = true;
  A.ReadPoint = Point;
  A.ReadLoc = Loc;
  std::lock_guard<std::mutex> L(Mu);
  auto [It, Inserted] = Rec.try_emplace(C, A);
  if (!Inserted)
    It->second.joinInPlace(A);
}

void InterferenceRecorder::recordWrite(memory::CellId C, const Interval &V,
                                       uint32_t Point, SourceLocation Loc) {
  ThreadAccess A;
  A.Written = true;
  A.Writes = V;
  A.WritePoint = Point;
  A.WriteLoc = Loc;
  std::lock_guard<std::mutex> L(Mu);
  auto [It, Inserted] = Rec.try_emplace(C, A);
  if (!Inserted)
    It->second.joinInPlace(A);
}

ThreadInterference InterferenceRecorder::take() {
  std::lock_guard<std::mutex> L(Mu);
  ThreadInterference Out;
  Out.swap(Rec);
  return Out;
}

} // namespace concurrency
} // namespace astral
