//===- concurrency/Interference.h - Shared-cell interference ------*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flow-insensitive interference abstraction of Miné's "Static Analysis
/// of Run-Time Errors in Embedded Real-Time Parallel C Programs": for every
/// shared memory cell and every thread, the interval of values the thread may
/// write (joined over all its stores), plus the read/write access footprint
/// used by the data-race detector. A per-thread analysis consumes the rival
/// threads' write intervals at every shared-cell load and produces its own
/// recordings; ConcurrentAnalysis iterates the per-thread analyses until the
/// map stabilizes.
///
/// The map is a join-semilattice (per-cell interval join, access-bit or), so
/// accumulation is monotone and the fixpoint rounds terminate; a widening
/// jumps still-growing write intervals to the cell's machine range after a
/// few rounds, bounding the chain height.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_CONCURRENCY_INTERFERENCE_H
#define ASTRAL_CONCURRENCY_INTERFERENCE_H

#include "domains/Interval.h"
#include "memory/Cell.h"
#include "support/SourceLocation.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace astral {
namespace concurrency {

/// One thread's accumulated accesses to one shared cell. The alarm anchors
/// keep the *smallest* (point, location) that performed the access, so the
/// data-race report is independent of the order recordings arrive in (trace
/// partitions of one thread record concurrently).
struct ThreadAccess {
  bool Read = false;
  bool Written = false;
  /// Join of every value the thread may store into the cell.
  Interval Writes = Interval::bottom();
  uint32_t WritePoint = 0;
  SourceLocation WriteLoc;
  uint32_t ReadPoint = 0;
  SourceLocation ReadLoc;

  /// Folds \p O into this access (interval join, min-anchor). Returns true
  /// when anything grew — the fixpoint's change detector.
  bool joinInPlace(const ThreadAccess &O);

  bool operator==(const ThreadAccess &O) const {
    return Read == O.Read && Written == O.Written && Writes == O.Writes;
  }
};

/// A thread's interference contribution: shared cell -> accumulated access.
using ThreadInterference = std::map<memory::CellId, ThreadAccess>;

/// The interference map: one ThreadInterference per declared thread. All
/// mutation is monotone (join), so iterating per-thread analyses against a
/// snapshot and folding their recordings back reaches the same fixpoint in
/// any schedule — what keeps reports byte-identical across --jobs.
class InterferenceMap {
public:
  explicit InterferenceMap(size_t NumThreads) : Threads(NumThreads) {}

  size_t numThreads() const { return Threads.size(); }
  const ThreadInterference &thread(size_t T) const { return Threads[T]; }

  /// Folds \p Delta into thread \p T's component. Returns true on growth.
  bool joinInPlace(size_t T, const ThreadInterference &Delta);

  bool equal(const InterferenceMap &O) const;

  /// Widening against the previous round: any write interval of this map
  /// that strictly grew past \p Prev jumps to the cell's machine range
  /// (\p CellRange, indexed by CellId) — the finite-height cap that
  /// guarantees the rounds terminate even on counters racing upward.
  void widenWrites(const InterferenceMap &Prev,
                   const std::vector<Interval> &CellRange);

  /// Join of every *other* thread's write interval for \p C — the value a
  /// load of \p C in thread \p T must additionally account for. Bottom when
  /// no rival writes the cell.
  Interval rivalWrites(size_t T, memory::CellId C) const;

  /// Distinct shared cells written by at least one thread
  /// (`concurrency.interference_cells`).
  size_t interferenceCells() const;

private:
  std::vector<ThreadInterference> Threads;
};

/// Mutex-guarded recording sink for one thread's analysis run. Partition
/// workers of the same thread record concurrently; joins are commutative and
/// idempotent, so the accumulated result is schedule-independent.
class InterferenceRecorder {
public:
  void recordRead(memory::CellId C, uint32_t Point, SourceLocation Loc);
  void recordWrite(memory::CellId C, const Interval &V, uint32_t Point,
                   SourceLocation Loc);

  /// Moves the recordings out (end of one per-thread run).
  ThreadInterference take();

private:
  std::mutex Mu;
  ThreadInterference Rec;
};

/// The per-thread analysis context Transfer consults on every shared-cell
/// access: which thread this is, the interference snapshot to read rival
/// writes from, the recorder to feed, and the shared-cell predicate.
struct ThreadContext {
  size_t ThreadIndex = 0;
  const InterferenceMap *In = nullptr;
  InterferenceRecorder *Out = nullptr;
  /// Indexed by CellId; non-zero for cells visible to several threads
  /// (persistent, non-volatile).
  const std::vector<uint8_t> *SharedCell = nullptr;

  bool isShared(memory::CellId C) const {
    return SharedCell && C < SharedCell->size() && (*SharedCell)[C];
  }
};

} // namespace concurrency
} // namespace astral

#endif // ASTRAL_CONCURRENCY_INTERFERENCE_H
