//===- concurrency/ConcurrentAnalysis.h - Interference rounds ----*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interference fixpoint driver for threaded programs (Miné, "Static
/// Analysis of Run-Time Errors in Embedded Real-Time Parallel C Programs"):
///
///   1. One classic sequential run analyzes global initialization plus the
///      entry function — the startup phase; its final environment E0 is the
///      state every declared thread starts from.
///   2. Each round re-analyzes every thread's entry from E0 with the current
///      InterferenceMap applied at every shared-cell load, recording the
///      values the thread may write; the recordings are joined back into the
///      map in thread-declaration order (deterministic merge).
///   3. Rounds repeat until the map stabilizes (a widening caps still-growing
///      write intervals at the machine range, so the rounds terminate). The
///      converged round's per-thread results — computed *against* the
///      fixpoint map — are the final ones.
///
/// Per-thread analyses of one round are independent, so they fan out over
/// the ambient Scheduler (the analyzer's fourth parallel grain); every merge
/// is in thread-declaration order, keeping reports byte-identical across
/// --jobs and both dispatch modes.
///
/// On top of the fixpoint, two derived alarm classes:
///   - data races: a shared cell written by one thread and accessed
///     (read or written) by another — no synchronization model exists yet,
///     so every such pair is racy;
///   - cross-thread-range alarms: an alarm of the converged round absent
///     from the same thread's first (interference-free) round — an error
///     reachable only through rival threads' writes.
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_CONCURRENCY_CONCURRENTANALYSIS_H
#define ASTRAL_CONCURRENCY_CONCURRENTANALYSIS_H

#include "analyzer/Alarm.h"
#include "analyzer/DomainRegistry.h"
#include "analyzer/Options.h"
#include "concurrency/Interference.h"
#include "memory/AbstractEnv.h"
#include "support/Statistics.h"

#include <map>
#include <string>
#include <vector>

namespace astral {
namespace concurrency {

/// One declared thread: the `@astral thread <name> <entry>` pair, resolved.
struct ThreadSpec {
  std::string Name;
  const ir::Function *Fn = nullptr;
};

/// Everything AnalysisSession's execution phase consumes — the concurrent
/// counterpart of one Iterator::run().
struct ConcurrentResult {
  memory::AbstractEnv Final = memory::AbstractEnv::bottom();
  AlarmSet Alarms;
  std::map<uint32_t, memory::AbstractEnv> LoopInvariants;
  std::vector<std::vector<uint8_t>> RelPackImproved;
  uint64_t Rounds = 0;
  uint64_t InterferenceCells = 0;
  /// True when the round cap fired before the map stabilized (never on sane
  /// inputs; surfaced as `concurrency.rounds_capped`).
  bool Capped = false;
  size_t MaxPartitionWidth = 0;
  size_t MaxCallWidth = 0;
};

class ConcurrentAnalysis {
public:
  ConcurrentAnalysis(const ir::Program &P, const memory::CellLayout &Layout,
                     const DomainRegistry &Registry,
                     const AnalyzerOptions &Opts, Statistics &Stats);

  /// Resolves Opts.Threads against the program. Never fails here — the
  /// frontend validated the entries (exist, have a body, no parameters).
  ConcurrentResult run();

  /// Rounds after which still-growing write intervals jump to the machine
  /// range.
  static constexpr unsigned WidenAfterRound = 3;
  /// Hard safety cap on rounds (widening converges far earlier).
  static constexpr unsigned MaxRounds = 64;

private:
  const ir::Program &P;
  const memory::CellLayout &Layout;
  const DomainRegistry &Reg;
  const AnalyzerOptions &Opts;
  Statistics &Stats;
};

} // namespace concurrency
} // namespace astral

#endif // ASTRAL_CONCURRENCY_CONCURRENTANALYSIS_H
