//===- concurrency/ConcurrentAnalysis.cpp - Interference rounds -------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "concurrency/ConcurrentAnalysis.h"

#include "analyzer/Iterator.h"
#include "analyzer/Scheduler.h"
#include "support/Cancellation.h"

#include <set>
#include <utility>

namespace astral {
namespace concurrency {

using memory::AbstractEnv;
using memory::CellId;

ConcurrentAnalysis::ConcurrentAnalysis(const ir::Program &P,
                                       const memory::CellLayout &Layout,
                                       const DomainRegistry &Registry,
                                       const AnalyzerOptions &Opts,
                                       Statistics &Stats)
    : P(P), Layout(Layout), Reg(Registry), Opts(Opts), Stats(Stats) {}

namespace {

/// One thread's outputs from one interference round.
struct ThreadRun {
  AlarmSet Alarms;
  AbstractEnv Final = AbstractEnv::bottom();
  std::map<uint32_t, AbstractEnv> Invariants;
  std::vector<std::vector<uint8_t>> RelImproved;
  size_t MaxWidth = 0;
  size_t MaxCallW = 0;
  ThreadInterference Recorded;
};

/// The (point, kind) signature set of an alarm collection — the
/// cross-thread-range detector's baseline.
std::set<std::pair<uint32_t, uint8_t>> alarmSignatures(const AlarmSet &A) {
  std::set<std::pair<uint32_t, uint8_t>> S;
  for (const Alarm &X : A.alarms())
    S.emplace(X.Point, static_cast<uint8_t>(X.Kind));
  return S;
}

} // namespace

ConcurrentResult ConcurrentAnalysis::run() {
  ConcurrentResult R;

  std::vector<ThreadSpec> Threads;
  for (const auto &[Name, Fn] : Opts.Threads)
    Threads.push_back(ThreadSpec{Name, P.findFunction(Fn)});
  const size_t N = Threads.size();

  // Shared cells: persistent (global / static) and non-volatile. Volatiles
  // already model arbitrary external interference through their specified
  // range; locals are private by construction (no pointers escape —
  // Sect. 4's call-by-reference restriction).
  std::vector<uint8_t> SharedCell(Layout.numCells(), 0);
  for (CellId C = 0; C < Layout.numCells(); ++C) {
    const memory::CellInfo &CI = Layout.cell(C);
    if (CI.Var != ir::NoVar && P.var(CI.Var).IsPersistent && !CI.IsVolatile)
      SharedCell[C] = 1;
  }

  // A private Transfer for the cross-thread merges (preJoinReduce folds,
  // machine ranges for the interference widening). Never checks, so its
  // alarm sink stays empty.
  AlarmSet MergeAlarms;
  Transfer MergeT(P, Layout, Reg, Opts, Stats, MergeAlarms);
  std::vector<Interval> CellRange(Layout.numCells());
  for (CellId C = 0; C < Layout.numCells(); ++C)
    CellRange[C] = MergeT.cellTypeRange(C);

  // Startup: global initialization plus the entry function, the classic
  // sequential analysis. Threads are modeled as starting from its final
  // environment (documented caveat: the entry must terminate — a
  // non-returning entry leaves E0 bottom and the threads dead).
  AlarmSet StartupAlarms;
  Iterator Startup(P, Layout, Reg, Opts, Stats, StartupAlarms);
  AbstractEnv E0 = Startup.run();
  R.LoopInvariants = Startup.loopInvariants();
  R.RelPackImproved = Startup.transfer().RelPackImproved;
  R.MaxPartitionWidth = Startup.maxPartitionDispatchWidth();
  R.MaxCallWidth = Startup.maxCallDispatchWidth();

  // Relational packs are thread-local under interference semantics; sever
  // the startup state's facts about shared cells so no stale relation
  // (e.g. an octagon still believing a shared cell holds its init value)
  // can re-tighten a loaded value past the per-load interference join.
  if (!E0.isBottom())
    for (CellId C = 0; C < Layout.numCells(); ++C)
      if (SharedCell[C])
        MergeT.forgetCellRelations(E0, C);

  InterferenceMap Cur(N);
  std::vector<std::set<std::pair<uint32_t, uint8_t>>> Baseline(N);
  std::vector<ThreadRun> FinalRuns;

  for (unsigned Round = 1;; ++Round) {
    // Round boundary: the interference analysis's cancellation choke point.
    // Runs on the master thread between fan-outs, so the budget poll here
    // reads a deterministic live figure (same discipline as the fixpoint
    // heads — see support/Cancellation.h).
    cancel::poll();
    cancel::pollBudget();
    std::vector<ThreadRun> Runs(N);
    // The fourth parallel grain: per-thread analyses of one round are
    // independent (each reads the round's snapshot map and E0, writes only
    // its own ThreadRun), so they fan out over the ambient Scheduler.
    // Every merge below runs in thread-declaration order, so reports are
    // byte-identical whether or not the fan-out happened.
    bool FannedOut = Scheduler::runGroups(N, [&](size_t T) {
      ThreadRun &TR = Runs[T];
      InterferenceRecorder Rec;
      ThreadContext Ctx;
      Ctx.ThreadIndex = T;
      Ctx.In = &Cur;
      Ctx.Out = &Rec;
      Ctx.SharedCell = &SharedCell;
      Iterator It(P, Layout, Reg, Opts, Stats, TR.Alarms);
      It.transfer().Conc = &Ctx;
      TR.Final = It.runThread(Threads[T].Fn, E0);
      TR.Invariants = It.loopInvariants();
      TR.RelImproved = It.transfer().RelPackImproved;
      TR.MaxWidth = It.maxPartitionDispatchWidth();
      TR.MaxCallW = It.maxCallDispatchWidth();
      TR.Recorded = Rec.take();
    });
    if (FannedOut)
      Stats.add("parallel.thread_rounds_dispatched");

    if (Round == 1)
      for (size_t T = 0; T < N; ++T)
        Baseline[T] = alarmSignatures(Runs[T].Alarms);

    InterferenceMap Prev = Cur;
    bool Changed = false;
    for (size_t T = 0; T < N; ++T)
      Changed |= Cur.joinInPlace(T, Runs[T].Recorded);

    R.Rounds = Round;
    if (!Changed || Round >= MaxRounds) {
      // This round already ran against the fixpoint map, so its outputs
      // are the final ones. (The cap only fires on pathological inputs;
      // the widening below makes real chains short.)
      R.Capped = Changed;
      FinalRuns = std::move(Runs);
      break;
    }
    // Write intervals still growing after a few exact rounds jump to the
    // machine range — the finite-height cap that bounds the chain (racing
    // counters would otherwise creep up one increment per round).
    if (Round >= WidenAfterRound)
      Cur.widenWrites(Prev, CellRange);
  }

  // ---- Deterministic result assembly (thread-declaration order) ----

  R.InterferenceCells = Cur.interferenceCells();

  R.Alarms.merge(StartupAlarms);
  for (size_t T = 0; T < N; ++T)
    R.Alarms.merge(FinalRuns[T].Alarms);

  // Data races: a written shared cell with a rival accessor. Cells ascend;
  // the anchor is the lowest-indexed writer's recorded store.
  for (CellId C = 0; C < Layout.numCells(); ++C) {
    if (!SharedCell[C])
      continue;
    std::vector<size_t> Writers, Readers;
    for (size_t T = 0; T < N; ++T) {
      auto It = Cur.thread(T).find(C);
      if (It == Cur.thread(T).end())
        continue;
      if (It->second.Written)
        Writers.push_back(T);
      if (It->second.Read)
        Readers.push_back(T);
    }
    if (Writers.empty())
      continue;
    size_t Rival = SIZE_MAX;
    bool RivalWrites = false;
    if (Writers.size() >= 2) {
      Rival = Writers[1];
      RivalWrites = true;
    } else {
      for (size_t T : Readers)
        if (T != Writers[0]) {
          Rival = T;
          break;
        }
    }
    if (Rival == SIZE_MAX)
      continue;
    const ThreadAccess &W = Cur.thread(Writers[0]).find(C)->second;
    R.Alarms.report(W.WritePoint, W.WriteLoc, AlarmKind::DataRace,
                    "data race on '" + Layout.cell(C).Name + "': thread '" +
                        Threads[Writers[0]].Name + "' writes while thread '" +
                        Threads[Rival].Name + "' " +
                        (RivalWrites ? "writes" : "reads"),
                    /*Definite=*/false);
  }

  // Cross-thread-range alarms: a converged-round alarm absent from the same
  // thread's interference-free first round — the error is only reachable
  // through rival threads' writes.
  for (size_t T = 0; T < N; ++T)
    for (const Alarm &A : FinalRuns[T].Alarms.alarms()) {
      if (Baseline[T].count({A.Point, static_cast<uint8_t>(A.Kind)}))
        continue;
      R.Alarms.report(A.Point, A.Loc, AlarmKind::CrossThreadRange,
                      "only under cross-thread interference (" +
                          std::string(alarmKindName(A.Kind)) + " in thread '" +
                          Threads[T].Name + "'): " + A.Message,
                      /*Definite=*/false);
    }

  // Final environment: the startup state joined with every thread's final
  // state (the program's reachable post-states).
  auto Fold = [&](AbstractEnv &Acc, AbstractEnv &X) {
    MergeT.preJoinReduce(Acc, X);
    Acc = AbstractEnv::join(Acc, X);
  };
  R.Final = std::move(E0);
  for (size_t T = 0; T < N; ++T)
    Fold(R.Final, FinalRuns[T].Final);

  // Loop invariants: fold each thread's map in declaration order with the
  // canonical reduce-then-join (helpers shared between startup and threads
  // merge on their LoopId).
  for (size_t T = 0; T < N; ++T)
    for (auto &[LoopId, Inv] : FinalRuns[T].Invariants) {
      auto It = R.LoopInvariants.find(LoopId);
      if (It == R.LoopInvariants.end()) {
        R.LoopInvariants.emplace(LoopId, std::move(Inv));
        continue;
      }
      MergeT.preJoinReduce(It->second, Inv);
      It->second = AbstractEnv::join(It->second, Inv);
    }

  // Pack usefulness is monotone; OR is exact.
  for (size_t T = 0; T < N; ++T)
    for (size_t D = 0; D < R.RelPackImproved.size(); ++D)
      for (size_t Pk = 0; Pk < R.RelPackImproved[D].size(); ++Pk)
        R.RelPackImproved[D][Pk] |= FinalRuns[T].RelImproved[D][Pk];

  for (size_t T = 0; T < N; ++T) {
    R.MaxPartitionWidth = std::max(R.MaxPartitionWidth, FinalRuns[T].MaxWidth);
    R.MaxCallWidth = std::max(R.MaxCallWidth, FinalRuns[T].MaxCallW);
  }

  return R;
}

} // namespace concurrency
} // namespace astral
