//===- slicer/Slicer.h - Backward slicing for alarm inspection ----*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alarm-investigation slicer of Sect. 3.3: "if the slicing criterion is
/// an alarm point, the extracted slice contains the computations that led to
/// the alarm". Classical data + control dependence-based backward slicing
/// over the IR (Weiser, TSE 1984), plus the paper's proposed refinement:
/// an *abstract slice* restricted to the variables "we lack information
/// about", supplied as a predicate (the paper observed classical slices are
/// prohibitively large; the abstract variant is its sketched fix).
///
/// Dependences are computed at variable granularity; calls use def/use
/// summaries of the callee (reference parameters and return holders count
/// as definitions).
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_SLICER_SLICER_H
#define ASTRAL_SLICER_SLICER_H

#include "ir/Ir.h"

#include <functional>
#include <set>
#include <string>

namespace astral {

struct SliceResult {
  /// Program points (statement ids) in the slice.
  std::set<uint32_t> Points;
  /// Statements in the slice.
  size_t StmtCount = 0;
  /// Variables the slice tracks.
  std::set<ir::VarId> Vars;
  /// Human-readable rendering (statements in source order).
  std::string Rendering;
};

class Slicer {
public:
  explicit Slicer(const ir::Program &P);

  /// Backward slice from the statement containing \p Point.
  SliceResult backwardSlice(uint32_t Point) const;

  /// Abstract slice (Sect. 3.3): only dependences through variables for
  /// which \p Tracked returns true are followed — "we can consider only the
  /// variables we lack information about".
  SliceResult backwardSlice(
      uint32_t Point,
      const std::function<bool(ir::VarId)> &Tracked) const;

private:
  struct StmtInfo {
    const ir::Stmt *S = nullptr;
    std::set<ir::VarId> Defs;
    std::set<ir::VarId> Uses;
    /// Conditions controlling this statement (points of If/While owners).
    std::vector<size_t> Controls; ///< Indices into Stmts.
    size_t Order = 0;             ///< Execution order index.
  };

  void indexStmt(const ir::Stmt *S, std::vector<size_t> &ControlStack);
  void exprUses(const ir::Expr *E, std::set<ir::VarId> &Out) const;
  void lvalueUses(const ir::LValue &Lv, std::set<ir::VarId> &Out) const;

  const ir::Program &P;
  std::vector<StmtInfo> Stmts;             ///< In execution order.
  std::map<uint32_t, size_t> PointToStmt;  ///< Stmt & expr points.
  /// Callee def/use summaries.
  std::vector<std::set<ir::VarId>> FnDefs, FnUses;
};

} // namespace astral

#endif // ASTRAL_SLICER_SLICER_H
