//===- slicer/Slicer.cpp - Backward slicing for alarm inspection -------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "slicer/Slicer.h"

using namespace astral;
using namespace astral::ir;

void Slicer::exprUses(const Expr *E, std::set<VarId> &Out) const {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::Load:
    lvalueUses(E->Lv, Out);
    Out.insert(E->Lv.Base);
    return;
  case ExprKind::Unary:
  case ExprKind::Cast:
    exprUses(E->A, Out);
    return;
  case ExprKind::Binary:
    exprUses(E->A, Out);
    exprUses(E->B, Out);
    return;
  default:
    return;
  }
}

void Slicer::lvalueUses(const LValue &Lv, std::set<VarId> &Out) const {
  for (const Access &A : Lv.Path)
    if (A.K == Access::Kind::Index)
      exprUses(A.Index, Out);
}

void Slicer::indexStmt(const Stmt *S, std::vector<size_t> &ControlStack) {
  if (!S)
    return;
  auto Record = [&](std::set<VarId> Defs, std::set<VarId> Uses) {
    StmtInfo Info;
    Info.S = S;
    Info.Defs = std::move(Defs);
    Info.Uses = std::move(Uses);
    Info.Controls = ControlStack;
    Info.Order = Stmts.size();
    PointToStmt[S->Point] = Stmts.size();
    Stmts.push_back(std::move(Info));
  };
  auto MapExprPoints = [&](const Expr *E, size_t Idx) {
    std::vector<const Expr *> Work{E};
    while (!Work.empty()) {
      const Expr *X = Work.back();
      Work.pop_back();
      if (!X)
        continue;
      PointToStmt[X->Point] = Idx;
      Work.push_back(X->A);
      Work.push_back(X->B);
      if (X->is(ExprKind::Load))
        for (const Access &A : X->Lv.Path)
          if (A.K == Access::Kind::Index)
            Work.push_back(A.Index);
    }
  };

  switch (S->Kind) {
  case StmtKind::Assign: {
    std::set<VarId> Uses, Defs{S->Lhs.Base};
    lvalueUses(S->Lhs, Uses);
    exprUses(S->Rhs, Uses);
    Record(std::move(Defs), std::move(Uses));
    MapExprPoints(S->Rhs, Stmts.size() - 1);
    for (const Access &A : S->Lhs.Path)
      if (A.K == Access::Kind::Index)
        MapExprPoints(A.Index, Stmts.size() - 1);
    return;
  }
  case StmtKind::If: {
    std::set<VarId> Uses;
    exprUses(S->Cond, Uses);
    Record({}, std::move(Uses));
    size_t CondIdx = Stmts.size() - 1;
    MapExprPoints(S->Cond, CondIdx);
    ControlStack.push_back(CondIdx);
    indexStmt(S->Then, ControlStack);
    indexStmt(S->Else, ControlStack);
    ControlStack.pop_back();
    return;
  }
  case StmtKind::While: {
    std::set<VarId> Uses;
    exprUses(S->Cond, Uses);
    Record({}, std::move(Uses));
    size_t CondIdx = Stmts.size() - 1;
    MapExprPoints(S->Cond, CondIdx);
    ControlStack.push_back(CondIdx);
    indexStmt(S->Body, ControlStack);
    indexStmt(S->Step, ControlStack);
    ControlStack.pop_back();
    return;
  }
  case StmtKind::Seq:
    for (const Stmt *C : S->Stmts)
      indexStmt(C, ControlStack);
    return;
  case StmtKind::Call: {
    std::set<VarId> Uses, Defs;
    for (const CallArg &A : S->Args) {
      if (A.IsRef) {
        Defs.insert(A.Ref.Base); // May write through the reference.
        Uses.insert(A.Ref.Base);
        lvalueUses(A.Ref, Uses);
      } else {
        exprUses(A.Value, Uses);
      }
    }
    if (S->RetTo) {
      Defs.insert(S->RetTo->Base);
      lvalueUses(*S->RetTo, Uses);
    }
    // Callee summary: its defs/uses of globals flow through the call.
    if (S->Callee < FnDefs.size()) {
      for (VarId V : FnDefs[S->Callee])
        Defs.insert(V);
      for (VarId V : FnUses[S->Callee])
        Uses.insert(V);
    }
    Record(std::move(Defs), std::move(Uses));
    for (const CallArg &A : S->Args)
      if (!A.IsRef)
        MapExprPoints(A.Value, Stmts.size() - 1);
    return;
  }
  case StmtKind::Return: {
    std::set<VarId> Uses;
    exprUses(S->RetVal, Uses);
    Record({}, std::move(Uses));
    return;
  }
  case StmtKind::Assume:
  case StmtKind::Assert: {
    std::set<VarId> Uses;
    exprUses(S->Cond, Uses);
    Record({}, std::move(Uses));
    MapExprPoints(S->Cond, Stmts.size() - 1);
    return;
  }
  case StmtKind::Wait:
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Nop:
    Record({}, {});
    return;
  }
}

Slicer::Slicer(const Program &Prog) : P(Prog) {
  // Callee summaries first (iterate to a fixpoint over the call graph; the
  // subset has no recursion, so |functions| passes suffice).
  FnDefs.assign(P.Functions.size(), {});
  FnUses.assign(P.Functions.size(), {});
  for (size_t Pass = 0; Pass < P.Functions.size(); ++Pass) {
    bool Changed = false;
    for (const Function &F : P.Functions) {
      if (!F.Body)
        continue;
      std::set<VarId> Defs, Uses;
      std::vector<const Stmt *> Work{F.Body};
      while (!Work.empty()) {
        const Stmt *S = Work.back();
        Work.pop_back();
        if (!S)
          continue;
        switch (S->Kind) {
        case StmtKind::Assign: {
          Defs.insert(S->Lhs.Base);
          std::set<VarId> U;
          exprUses(S->Rhs, U);
          lvalueUses(S->Lhs, U);
          Uses.insert(U.begin(), U.end());
          break;
        }
        case StmtKind::Call: {
          for (const CallArg &A : S->Args) {
            if (A.IsRef) {
              Defs.insert(A.Ref.Base);
              Uses.insert(A.Ref.Base);
            } else {
              std::set<VarId> U;
              exprUses(A.Value, U);
              Uses.insert(U.begin(), U.end());
            }
          }
          if (S->RetTo)
            Defs.insert(S->RetTo->Base);
          if (S->Callee < FnDefs.size()) {
            Defs.insert(FnDefs[S->Callee].begin(), FnDefs[S->Callee].end());
            Uses.insert(FnUses[S->Callee].begin(), FnUses[S->Callee].end());
          }
          break;
        }
        default: {
          std::set<VarId> U;
          exprUses(S->Cond, U);
          exprUses(S->RetVal, U);
          Uses.insert(U.begin(), U.end());
          break;
        }
        }
        Work.push_back(S->Then);
        Work.push_back(S->Else);
        Work.push_back(S->Body);
        Work.push_back(S->Step);
        for (const Stmt *C : S->Stmts)
          Work.push_back(C);
      }
      if (Defs != FnDefs[F.Id] || Uses != FnUses[F.Id]) {
        FnDefs[F.Id] = std::move(Defs);
        FnUses[F.Id] = std::move(Uses);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Index statements in execution order: init, then every function body
  // (so intraprocedural order is respected; calls rely on summaries).
  std::vector<size_t> Controls;
  indexStmt(P.GlobalInit, Controls);
  for (const Function &F : P.Functions)
    indexStmt(F.Body, Controls);
}

SliceResult Slicer::backwardSlice(uint32_t Point) const {
  return backwardSlice(Point, [](VarId) { return true; });
}

SliceResult Slicer::backwardSlice(
    uint32_t Point, const std::function<bool(VarId)> &Tracked) const {
  SliceResult R;
  auto It = PointToStmt.find(Point);
  if (It == PointToStmt.end())
    return R;

  std::vector<bool> InSlice(Stmts.size(), false);
  std::set<VarId> Needed;
  size_t Criterion = It->second;
  InSlice[Criterion] = true;
  for (VarId V : Stmts[Criterion].Uses)
    if (Tracked(V))
      Needed.insert(V);
  for (size_t Ctrl : Stmts[Criterion].Controls) {
    InSlice[Ctrl] = true;
    for (VarId V : Stmts[Ctrl].Uses)
      if (Tracked(V))
        Needed.insert(V);
  }

  // Iterate to a fixpoint (loops create backward dependences).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = Stmts.size(); I-- > 0;) {
      if (InSlice[I])
        continue;
      const StmtInfo &Info = Stmts[I];
      bool DefinesNeeded = false;
      for (VarId V : Info.Defs)
        if (Needed.count(V)) {
          DefinesNeeded = true;
          break;
        }
      if (!DefinesNeeded)
        continue;
      InSlice[I] = true;
      Changed = true;
      for (VarId V : Info.Uses)
        if (Tracked(V))
          Needed.insert(V);
      for (size_t Ctrl : Info.Controls) {
        if (!InSlice[Ctrl]) {
          InSlice[Ctrl] = true;
          for (VarId V : Stmts[Ctrl].Uses)
            if (Tracked(V))
              Needed.insert(V);
        }
      }
    }
  }

  for (size_t I = 0; I < Stmts.size(); ++I) {
    if (!InSlice[I])
      continue;
    ++R.StmtCount;
    const Stmt *S = Stmts[I].S;
    R.Points.insert(S->Point);
    // Control statements are rendered as their head only (the sliced body
    // statements appear on their own lines).
    if (S->is(StmtKind::If))
      R.Rendering += "if (" + exprToString(P, S->Cond) + ") ...\n";
    else if (S->is(StmtKind::While))
      R.Rendering += "while (" + exprToString(P, S->Cond) + ") ...\n";
    else
      R.Rendering += stmtToString(P, S, 0);
  }
  R.Vars = std::move(Needed);
  return R;
}
