//===- tools/astral-cli/AstralCli.cpp - Command-line driver -------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The driver proper lives in analyzer/CliOptions.{h,cpp} (shared with the
// service daemon); this file only dispatches between the three modes:
//
//   astral-cli <file>... [options]          one-shot analysis (the classic)
//   astral-cli serve --socket=<path> ...    analyzer-as-a-service daemon
//   astral-cli client --socket=<path> <op>  talk to a running daemon
//
// One-shot mode: preprocess -> parse -> sema -> lower -> fixpoint -> alarms
// over one or more real input files, with the Sect. 3.2 "adaptation by
// parametrization" exposed as flags and as `@astral` spec directives
// embedded in the input's comments. Several input files form a batch:
// AnalysisSession::analyzeBatch schedules whole files across one worker
// pool (--jobs) and the reports print in input order (a JSON array in
// --json mode).
//
// Exit codes: 0 analysis completed (alarms allowed), 1 usage or I/O error,
// 2 frontend (preprocess/parse/sema/lower) failure on any file, 3 alarms
// raised while --fail-on-alarms is active.
//
//===----------------------------------------------------------------------===//

#include "analyzer/AnalysisSession.h"
#include "analyzer/CliOptions.h"
#include "service/Client.h"
#include "service/Server.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace astral;

namespace {

int runOneShot(const std::vector<std::string> &Args) {
  cli::CliOptions Cli;
  cli::ParseOutcome Parsed = cli::parseArgs(Args, Cli);
  for (const std::string &W : Parsed.Warnings)
    std::fprintf(stderr, "%s\n", W.c_str());
  if (Parsed.ShowHelp) {
    cli::printUsage(stdout);
    return 0;
  }
  if (!Parsed.Ok) {
    std::fprintf(stderr, "%s\n", Parsed.Error.c_str());
    if (Parsed.Error.find("unknown flag") != std::string::npos)
      cli::printUsage(stderr);
    return 1;
  }
  if (Cli.InputPaths.empty()) {
    cli::printUsage(stderr);
    return 1;
  }

  std::vector<std::string> Notes;
  std::string LoadErr;
  std::optional<std::vector<cli::LoadedFile>> Files =
      cli::loadInputFiles(Cli, Notes, LoadErr);
  for (const std::string &N : Notes)
    std::fprintf(stderr, "%s\n", N.c_str());
  if (!Files) {
    std::fprintf(stderr, "%s\n", LoadErr.c_str());
    return 1;
  }

  // Build every input up front (the batch is scheduled as a whole).
  std::vector<std::string> Paths;
  std::vector<AnalysisInput> Inputs;
  for (const cli::LoadedFile &F : *Files) {
    AnalysisInput In;
    In.FileName = F.Path;
    In.Source = F.Source;
    In.Headers = F.Headers;
    std::vector<std::string> Warnings;
    In.Options = cli::assembleOptions(Cli, F.Path, F.Source, Warnings);
    for (const std::string &W : Warnings)
      std::fprintf(stderr, "%s\n", W.c_str());
    Paths.push_back(F.Path);
    Inputs.push_back(std::move(In));
  }

  std::vector<AnalysisResult> Results = AnalysisSession::analyzeBatch(Inputs);

  cli::RunOutput Out = cli::renderRun(Cli, Paths, Results);
  std::fwrite(Out.Out.data(), 1, Out.Out.size(), stdout);
  std::fwrite(Out.Err.data(), 1, Out.Err.size(), stderr);
  return Out.ExitCode;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  if (!Args.empty() && Args[0] == "serve")
    return service::runServeCommand(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  if (!Args.empty() && Args[0] == "client")
    return service::runClientCommand(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  return runOneShot(Args);
}
