//===- tools/astral-cli/AstralCli.cpp - Command-line driver -------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The driver proper lives in analyzer/CliOptions.{h,cpp} (shared with the
// service daemon); this file only dispatches between the three modes:
//
//   astral-cli <file>... [options]          one-shot analysis (the classic)
//   astral-cli serve --socket=<path> ...    analyzer-as-a-service daemon
//   astral-cli client --socket=<path> <op>  talk to a running daemon
//   astral-cli emit-family [--lines=<n>] [--seed=<n>]
//                                           print a generated member of the
//                                           Sect. 4 program family with its
//                                           environment spec rendered as
//                                           @astral directives (so scripts
//                                           can feed paper-scale inputs to
//                                           either mode; chaos_smoke.sh uses
//                                           the 8-kLOC fig2 member)
//
// One-shot mode: preprocess -> parse -> sema -> lower -> fixpoint -> alarms
// over one or more real input files, with the Sect. 3.2 "adaptation by
// parametrization" exposed as flags and as `@astral` spec directives
// embedded in the input's comments. Several input files form a batch:
// AnalysisSession::analyzeBatch schedules whole files across one worker
// pool (--jobs) and the reports print in input order (a JSON array in
// --json mode).
//
// Exit codes: 0 analysis completed (alarms allowed), 1 usage or I/O error,
// 2 frontend (preprocess/parse/sema/lower) failure on any file, 3 alarms
// raised while --fail-on-alarms is active, 4 analysis stopped by resource
// governance (--deadline-ms expiry, or --memory-budget-mb under
// --on-budget=fail).
//
//===----------------------------------------------------------------------===//

#include "analyzer/AnalysisSession.h"
#include "analyzer/CliOptions.h"
#include "codegen/FamilyGenerator.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/Cancellation.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace astral;

namespace {

int runOneShot(const std::vector<std::string> &Args) {
  cli::CliOptions Cli;
  cli::ParseOutcome Parsed = cli::parseArgs(Args, Cli);
  for (const std::string &W : Parsed.Warnings)
    std::fprintf(stderr, "%s\n", W.c_str());
  if (Parsed.ShowHelp) {
    cli::printUsage(stdout);
    return 0;
  }
  if (!Parsed.Ok) {
    std::fprintf(stderr, "%s\n", Parsed.Error.c_str());
    if (Parsed.Error.find("unknown flag") != std::string::npos)
      cli::printUsage(stderr);
    return 1;
  }
  if (Cli.InputPaths.empty()) {
    cli::printUsage(stderr);
    return 1;
  }

  std::vector<std::string> Notes;
  std::string LoadErr;
  std::optional<std::vector<cli::LoadedFile>> Files =
      cli::loadInputFiles(Cli, Notes, LoadErr);
  for (const std::string &N : Notes)
    std::fprintf(stderr, "%s\n", N.c_str());
  if (!Files) {
    std::fprintf(stderr, "%s\n", LoadErr.c_str());
    return 1;
  }

  // Build every input up front (the batch is scheduled as a whole).
  std::vector<std::string> Paths;
  std::vector<AnalysisInput> Inputs;
  for (const cli::LoadedFile &F : *Files) {
    AnalysisInput In;
    In.FileName = F.Path;
    In.Source = F.Source;
    In.Headers = F.Headers;
    std::vector<std::string> Warnings;
    In.Options = cli::assembleOptions(Cli, F.Path, F.Source, Warnings);
    for (const std::string &W : Warnings)
      std::fprintf(stderr, "%s\n", W.c_str());
    Paths.push_back(F.Path);
    Inputs.push_back(std::move(In));
  }

  std::vector<AnalysisResult> Results;
  try {
    Results = AnalysisSession::analyzeBatch(Inputs);
  } catch (const cancel::AnalysisCancelled &C) {
    // Resource governance stopped the batch (deadline expiry, or an
    // over-budget run under --on-budget=fail): its own exit code, distinct
    // from usage/frontend/alarm failures, and a reason the service layer
    // spells identically in its error_kind field.
    std::fprintf(stderr, "astral-cli: error: %s (%s)\n", C.what(),
                 cancel::reasonName(C.reason()));
    return 4;
  }

  cli::RunOutput Out = cli::renderRun(Cli, Paths, Results);
  std::fwrite(Out.Out.data(), 1, Out.Out.size(), stdout);
  std::fwrite(Out.Err.data(), 1, Out.Err.size(), stderr);
  return Out.ExitCode;
}

/// Prints a generated family member with its environment specification
/// rendered as `@astral` comment directives, so the produced file is
/// self-specifying: the one-shot CLI and the serve daemon analyze it under
/// exactly the parametrization the generator documented for it (volatile
/// ranges, partitioned functions, thresholds, and the benches' 1e6-tick
/// operating time).
int runEmitFamily(const std::vector<std::string> &Args) {
  codegen::GeneratorConfig C;
  C.TargetLines = 8000;
  C.Seed = 1234; // The benches' 8-kLOC fig2 member by default.
  for (const std::string &A : Args) {
    auto NumVal = [&](const char *Prefix) -> std::optional<unsigned long> {
      if (A.rfind(Prefix, 0) != 0)
        return std::nullopt;
      try {
        size_t End = 0;
        std::string V = A.substr(std::string(Prefix).size());
        unsigned long N = std::stoul(V, &End);
        if (End != V.size())
          return std::nullopt;
        return N;
      } catch (const std::exception &) {
        return std::nullopt;
      }
    };
    if (auto N = NumVal("--lines=")) {
      C.TargetLines = static_cast<unsigned>(*N);
    } else if (auto N = NumVal("--seed=")) {
      C.Seed = *N;
    } else {
      std::fprintf(stderr,
                   "astral-cli: error: emit-family expects --lines=<n> "
                   "and/or --seed=<n>, got '%s'\n",
                   A.c_str());
      return 1;
    }
  }
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);
  std::string Out;
  Out += "/* Generated member of the Sect. 4 program family "
         "(astral-cli emit-family). */\n";
  char Buf[192];
  for (const auto &[Name, R] : FP.VolatileRanges) {
    std::snprintf(Buf, sizeof(Buf), "// @astral volatile %s %.17g %.17g\n",
                  Name.c_str(), R.Lo, R.Hi);
    Out += Buf;
  }
  for (const std::string &Fn : FP.PartitionFunctions) {
    std::snprintf(Buf, sizeof(Buf), "// @astral partition %s\n", Fn.c_str());
    Out += Buf;
  }
  for (double T : FP.DocumentedThresholds) {
    std::snprintf(Buf, sizeof(Buf), "// @astral threshold %.17g\n", T);
    Out += Buf;
  }
  Out += "// @astral clock-max 1e6\n";
  Out += FP.Source;
  std::fwrite(Out.data(), 1, Out.size(), stdout);
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  if (!Args.empty() && Args[0] == "serve")
    return service::runServeCommand(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  if (!Args.empty() && Args[0] == "client")
    return service::runClientCommand(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  if (!Args.empty() && Args[0] == "emit-family")
    return runEmitFamily(
        std::vector<std::string>(Args.begin() + 1, Args.end()));
  return runOneShot(Args);
}
