//===- tools/astral-cli/AstralCli.cpp - Command-line driver -------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// End-to-end driver: preprocess -> parse -> sema -> lower -> fixpoint ->
// alarms over one or more real input files, with the Sect. 3.2 "adaptation
// by parametrization" exposed as flags and as `@astral` spec directives
// embedded in the input's comments.
//
//   astral-cli <file>... [--jobs=N] [--dump-invariants] [--json]
//
// Several input files form a batch: AnalysisSession::analyzeBatch schedules
// whole files across one worker pool (--jobs) and the reports print in
// input order (a JSON array in --json mode).
//
// Exit codes: 0 analysis completed (alarms allowed), 1 usage or I/O error,
// 2 frontend (preprocess/parse/sema/lower) failure on any file, 3 alarms
// raised while --fail-on-alarms is active.
//
//===----------------------------------------------------------------------===//

#include "analyzer/AnalysisSession.h"
#include "analyzer/Scheduler.h"
#include "analyzer/SpecDirectives.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace astral;

namespace {

struct CliOptions {
  std::vector<std::string> InputPaths;
  bool DumpInvariants = false;
  bool DumpStats = false;
  bool Json = false;
  bool Quiet = false;
  bool FailOnAlarms = false;
  /// Analyzer-option mutations from command-line flags, applied *after* the
  /// input's @astral spec directives so that flags override directives.
  std::vector<std::function<void(AnalyzerOptions &)>> FlagOps;
};

void printUsage(std::FILE *Out) {
  std::fputs(
      "usage: astral-cli <file>... [options]\n"
      "\n"
      "Runs the full ASTRAL pipeline (preprocess, parse, sema, lower,\n"
      "fixpoint, alarm checking) on each <file> and prints the analysis\n"
      "reports in input order. Several files form a batch scheduled across\n"
      "the --jobs worker pool. C++ example harnesses (examples/*.cpp) are\n"
      "handled by extracting the embedded raw-string input program. `-`\n"
      "reads from stdin.\n"
      "\n"
      "execution policy:\n"
      "  --jobs <n>, --jobs=<n>       worker threads for the parallel\n"
      "                               lattice/reduction stages and for\n"
      "                               scheduling batch files (default: 1;\n"
      "                               0 = one per hardware thread, i.e.\n"
      "                               hardware_concurrency; values above\n"
      "                               the hardware thread count warn once).\n"
      "                               Reports are byte-identical for every\n"
      "                               value.\n"
      "  --pack-dispatch=<mode>       within-file transfer-sweep dispatch:\n"
      "                               'groups' (default) fans the disjoint\n"
      "                               pack groups of each relational domain\n"
      "                               out over the worker pool with a\n"
      "                               deterministic channel merge; 'seq'\n"
      "                               keeps the historical sequential\n"
      "                               reduction chain. Both modes produce\n"
      "                               identical reports.\n"
      "  --partition-dispatch=<mode>  trace-partition dispatch inside\n"
      "                               `@astral partition` functions: 'par'\n"
      "                               (default) fans the disjunction's\n"
      "                               environments out over the worker\n"
      "                               pool with a deterministic\n"
      "                               partition-order merge; 'seq' keeps\n"
      "                               the historical per-partition loop.\n"
      "                               Both modes produce identical\n"
      "                               reports.\n"
      "\n"
      "domain selection:\n"
      "  --domains=<list>             enabled abstract domains, a comma-\n"
      "                               separated subset of\n"
      "                               interval,clocked,octagon,tree,ellipsoid\n"
      "                               (default: all; interval is always on).\n"
      "                               Each relational domain can be ablated\n"
      "                               independently, e.g.\n"
      "                               --domains=interval,octagon\n"
      "  --octagon-closure=<mode>     octagon DBM closure discipline:\n"
      "                               'incremental' (default) propagates\n"
      "                               only through dirty rows/columns;\n"
      "                               'full' re-runs the full\n"
      "                               Floyd-Warshall sweep every time\n"
      "                               (for differential benching). Both\n"
      "                               modes produce identical reports.\n"
      "  --no-linearize               disable symbolic linearization\n"
      "\n"
      "  Deprecated aliases (mapped onto --domains=, warn once):\n"
      "  --octagons/--no-octagons, --no-ellipsoids, --no-trees, --no-clock,\n"
      "  --no-packing (= --domains=interval,clocked).\n"
      "\n"
      "iteration strategy:\n"
      "  --no-thresholds              plain interval widening\n"
      "  --threshold <v>              extra widening threshold (repeatable)\n"
      "  --unroll <n>                 default loop unrolling factor\n"
      "  --max-iterations <n>         fixpoint iteration cap\n"
      "\n"
      "environment specification (Sect. 4):\n"
      "  --volatile <name>=<lo>:<hi>  range of a volatile input (repeatable)\n"
      "  --clock-max <ticks>          maximal operating time in clock ticks\n"
      "  --partition <fn>             trace-partition a function (repeatable)\n"
      "  --entry <fn>                 entry function (default: main)\n"
      "\n"
      "  The same specification can live in the input itself as comment\n"
      "  directives: `/* @astral volatile speed 0 300 */`,\n"
      "  `@astral clock-max 3.6e6`, `@astral partition f`,\n"
      "  `@astral threshold 500`, `@astral entry main`,\n"
      "  `@astral domains interval,octagon`, `@astral jobs 4`,\n"
      "  `@astral pack-dispatch groups`, `@astral partition-dispatch par`,\n"
      "  `@astral octagon-closure full` (flags override directives).\n"
      "\n"
      "output:\n"
      "  --dump-invariants            print the main loop invariant\n"
      "  --dump-stats                 print the run's statistics counters\n"
      "                               to stderr (work-metering figures —\n"
      "                               deliberately outside the\n"
      "                               byte-identical report guarantee)\n"
      "  --json                       machine-readable report\n"
      "  --quiet                      only the alarm summary\n"
      "  --fail-on-alarms             exit 3 when any alarm is raised\n",
      Out);
}

std::optional<std::string> readFile(const std::string &Path) {
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return std::nullopt;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string dirName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  return Slash == std::string::npos ? std::string(".")
                                    : Path.substr(0, Slash);
}

/// True when the input is a C++ harness (one of examples/*.cpp) rather than
/// an analyzable program: it embeds its input as a raw-string literal.
bool looksLikeCxxHarness(const std::string &Text) {
  return Text.find("using namespace astral") != std::string::npos ||
         Text.find("#include \"analyzer/Analyzer.h\"") != std::string::npos;
}

/// Extracts the longest R"delim( ... )delim" literal — the embedded input
/// program of a C++ example harness. Honors custom delimiters, so an
/// embedded program may itself contain `)"`.
std::optional<std::string> extractRawString(const std::string &Text) {
  std::string Best;
  size_t Pos = 0;
  while ((Pos = Text.find("R\"", Pos)) != std::string::npos) {
    size_t DelimStart = Pos + 2;
    size_t Paren = Text.find('(', DelimStart);
    // A raw-string delimiter is at most 16 chars and contains no space,
    // parenthesis, backslash or quote; anything else is not a raw string.
    if (Paren == std::string::npos || Paren - DelimStart > 16 ||
        Text.substr(DelimStart, Paren - DelimStart)
                .find_first_of(" \t\n\r\\)\"") != std::string::npos) {
      Pos += 2;
      continue;
    }
    std::string Close =
        ")" + Text.substr(DelimStart, Paren - DelimStart) + "\"";
    size_t Start = Paren + 1;
    size_t End = Text.find(Close, Start);
    if (End == std::string::npos)
      break;
    if (End - Start > Best.size())
      Best = Text.substr(Start, End - Start);
    Pos = End + Close.size();
  }
  if (Best.empty())
    return std::nullopt;
  return Best;
}

/// Loads `#include "name"` dependencies of \p Source from disk (relative to
/// \p Dir) into \p Headers, recursively. Missing files are left to the
/// preprocessor to diagnose.
void preloadIncludes(const std::string &Source, const std::string &Dir,
                     std::map<std::string, std::string> &Headers) {
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t H = Line.find_first_not_of(" \t");
    if (H == std::string::npos || Line[H] != '#')
      continue;
    size_t Inc = Line.find("include", H + 1);
    if (Inc == std::string::npos)
      continue;
    size_t Open = Line.find('"', Inc + 7);
    if (Open == std::string::npos)
      continue;
    size_t Close = Line.find('"', Open + 1);
    if (Close == std::string::npos)
      continue;
    std::string Name = Line.substr(Open + 1, Close - Open - 1);
    if (Headers.count(Name))
      continue;
    std::optional<std::string> Text = readFile(Dir + "/" + Name);
    if (!Text)
      continue;
    Headers[Name] = *Text;
    preloadIncludes(*Text, Dir, Headers);
  }
}

struct VolatileSpec {
  std::string Name;
  double Lo, Hi;
};

std::optional<VolatileSpec> parseVolatileFlag(const std::string &Spec) {
  size_t Eq = Spec.find('=');
  size_t Colon = Spec.find(':', Eq == std::string::npos ? 0 : Eq);
  if (Eq == std::string::npos || Colon == std::string::npos)
    return std::nullopt;
  try {
    size_t LoEnd = 0, HiEnd = 0;
    std::string LoStr = Spec.substr(Eq + 1, Colon - Eq - 1);
    std::string HiStr = Spec.substr(Colon + 1);
    double Lo = std::stod(LoStr, &LoEnd);
    double Hi = std::stod(HiStr, &HiEnd);
    // Reject trailing garbage and inverted (bottom) ranges, which would
    // make the whole analysis vacuous.
    if (LoEnd != LoStr.size() || HiEnd != HiStr.size() || Lo > Hi)
      return std::nullopt;
    return VolatileSpec{Spec.substr(0, Eq), Lo, Hi};
  } catch (const std::exception &) {
    return std::nullopt;
  }
}

/// Strict numeric flag parsing: the whole value must be consumed.
std::optional<double> parseDoubleFlag(const std::string &V) {
  try {
    size_t End = 0;
    double X = std::stod(V, &End);
    if (End != V.size())
      return std::nullopt;
    return X;
  } catch (const std::exception &) {
    return std::nullopt;
  }
}

std::optional<unsigned> parseUnsignedFlag(const std::string &V) {
  try {
    size_t End = 0;
    unsigned long X = std::stoul(V, &End);
    if (End != V.size() || X > 0xffffffffUL)
      return std::nullopt;
    return static_cast<unsigned>(X);
  } catch (const std::exception &) {
    return std::nullopt;
  }
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void printJsonReport(const CliOptions &Cli, const std::string &Path,
                     const AnalysisResult &R) {
  std::printf("{\n");
  std::printf("  \"file\": \"%s\",\n", jsonEscape(Path).c_str());
  std::printf("  \"frontend_ok\": %s,\n", R.FrontendOk ? "true" : "false");
  if (!R.FrontendOk) {
    std::printf("  \"frontend_errors\": \"%s\"\n",
                jsonEscape(R.FrontendErrors).c_str());
    std::printf("}\n");
    return;
  }
  std::printf("  \"source_lines\": %llu,\n",
              static_cast<unsigned long long>(R.SourceLines));
  std::printf("  \"variables\": %llu,\n",
              static_cast<unsigned long long>(R.NumVariables));
  std::printf("  \"used_variables\": %llu,\n",
              static_cast<unsigned long long>(R.NumUsedVariables));
  std::printf("  \"cells\": %llu,\n",
              static_cast<unsigned long long>(R.NumCells));
  std::printf("  \"octagon_packs\": %llu,\n",
              static_cast<unsigned long long>(R.packCount(DomainKind::Octagon)));
  std::printf("  \"tree_packs\": %llu,\n",
              static_cast<unsigned long long>(R.packCount(DomainKind::DecisionTree)));
  std::printf("  \"ellipsoid_packs\": %llu,\n",
              static_cast<unsigned long long>(R.packCount(DomainKind::Ellipsoid)));
  std::printf("  \"analysis_seconds\": %.6f,\n", R.AnalysisSeconds);
  std::printf("  \"has_main_loop\": %s,\n", R.HasMainLoop ? "true" : "false");

  const InvariantCensus &C = R.MainLoopCensus;
  std::printf("  \"invariant_census\": {\n");
  std::printf("    \"boolean\": %llu,\n",
              static_cast<unsigned long long>(C.BoolAssertions));
  std::printf("    \"interval\": %llu,\n",
              static_cast<unsigned long long>(C.IntervalAssertions));
  std::printf("    \"clock\": %llu,\n",
              static_cast<unsigned long long>(C.ClockAssertions));
  std::printf("    \"oct_additive\": %llu,\n",
              static_cast<unsigned long long>(C.OctAdditive));
  std::printf("    \"oct_subtractive\": %llu,\n",
              static_cast<unsigned long long>(C.OctSubtractive));
  std::printf("    \"decision_trees\": %llu,\n",
              static_cast<unsigned long long>(C.DecisionTrees));
  std::printf("    \"ellipsoids\": %llu\n",
              static_cast<unsigned long long>(C.EllipsoidAssertions));
  std::printf("  },\n");

  std::printf("  \"ranges\": {\n");
  for (size_t I = 0; I < R.VariableRanges.size(); ++I) {
    const auto &[Name, Itv] = R.VariableRanges[I];
    std::printf("    \"%s\": \"%s\"%s\n", jsonEscape(Name).c_str(),
                jsonEscape(Itv.toString()).c_str(),
                I + 1 == R.VariableRanges.size() ? "" : ",");
  }
  std::printf("  },\n");

  std::printf("  \"alarm_count\": %zu,\n", R.Alarms.size());
  std::printf("  \"alarms\": [\n");
  for (size_t I = 0; I < R.Alarms.size(); ++I) {
    const Alarm &A = R.Alarms[I];
    std::printf("    {\"kind\": \"%s\", \"line\": %u, \"definite\": %s, "
                "\"message\": \"%s\"}%s\n",
                alarmKindName(A.Kind), A.Loc.Line,
                A.Definite ? "true" : "false", jsonEscape(A.Message).c_str(),
                I + 1 == R.Alarms.size() ? "" : ",");
  }
  std::printf("  ]");
  if (Cli.DumpInvariants)
    std::printf(",\n  \"invariant\": \"%s\"",
                jsonEscape(R.MainLoopInvariant).c_str());
  std::printf("\n}\n");
}

void printTextReport(const CliOptions &Cli, const std::string &Path,
                     const AnalysisResult &R) {
  if (!Cli.Quiet) {
    std::printf("== astral: %s ==\n", Path.c_str());
    std::printf("  source lines         %llu\n",
                static_cast<unsigned long long>(R.SourceLines));
    std::printf("  variables            %llu (%llu used)\n",
                static_cast<unsigned long long>(R.NumVariables),
                static_cast<unsigned long long>(R.NumUsedVariables));
    std::printf("  cells                %llu (%llu from array expansion)\n",
                static_cast<unsigned long long>(R.NumCells),
                static_cast<unsigned long long>(R.ExpandedArrayCells));
    std::printf("  octagon packs        %llu (avg %.1f vars, %zu useful)\n",
                static_cast<unsigned long long>(R.packCount(DomainKind::Octagon)),
                R.avgPackCells(DomainKind::Octagon), R.UsefulOctPacks.size());
    std::printf("  decision-tree packs  %llu\n",
                static_cast<unsigned long long>(R.packCount(DomainKind::DecisionTree)));
    std::printf("  ellipsoid packs      %llu\n",
                static_cast<unsigned long long>(R.packCount(DomainKind::Ellipsoid)));
    std::printf("  analysis time        %.3f s\n", R.AnalysisSeconds);
    std::printf("  abstract-state peak  %.1f MB\n",
                R.PeakAbstractBytes / 1048576.0);

    const InvariantCensus &C = R.MainLoopCensus;
    std::printf("  %s invariant census: boolean %llu / interval %llu / "
                "clock %llu / oct+ %llu / oct- %llu / trees %llu / "
                "ellipsoids %llu\n",
                R.HasMainLoop ? "main-loop" : "program-end",
                static_cast<unsigned long long>(C.BoolAssertions),
                static_cast<unsigned long long>(C.IntervalAssertions),
                static_cast<unsigned long long>(C.ClockAssertions),
                static_cast<unsigned long long>(C.OctAdditive),
                static_cast<unsigned long long>(C.OctSubtractive),
                static_cast<unsigned long long>(C.DecisionTrees),
                static_cast<unsigned long long>(C.EllipsoidAssertions));

    std::printf("\n  ranges at the %s:\n",
                R.HasMainLoop ? "main loop head" : "program end");
    for (const auto &[Name, Itv] : R.VariableRanges)
      std::printf("    %-20s %s\n", Name.c_str(), Itv.toString().c_str());
    std::printf("\n");
  }

  std::printf("alarms: %zu\n", R.Alarms.size());
  for (const Alarm &A : R.Alarms)
    std::printf("  [%s] line %u: %s%s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str(), A.Definite ? " (definite)" : "");
  if (R.Alarms.empty())
    std::printf("  none — the program is proved free of run-time errors "
                "under the specification\n");

  if (Cli.DumpInvariants) {
    std::printf("\n%s invariant:\n",
                R.HasMainLoop ? "main loop" : "program end");
    std::fputs(R.MainLoopInvariant.c_str(), stdout);
    if (!R.MainLoopInvariant.empty() && R.MainLoopInvariant.back() != '\n')
      std::printf("\n");
  }
}

} // namespace

int main(int argc, char **argv) {
  CliOptions Cli;
  std::vector<std::string> Args(argv + 1, argv + argc);

  auto NextValue = [&](size_t &I, const char *Flag) -> std::optional<std::string> {
    if (I + 1 >= Args.size()) {
      std::fprintf(stderr, "astral-cli: error: %s requires a value\n", Flag);
      return std::nullopt;
    }
    return Args[++I];
  };

  // Deprecated domain flags warn once each and map onto the --domains=
  // model, so existing scripts keep working.
  std::set<std::string> DeprecationWarned;
  auto WarnDeprecated = [&](const std::string &Flag,
                            const std::string &Instead) {
    if (!DeprecationWarned.insert(Flag).second)
      return;
    std::fprintf(stderr,
                 "astral-cli: warning: %s is deprecated; use %s\n",
                 Flag.c_str(), Instead.c_str());
  };

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "--help" || A == "-h") {
      printUsage(stdout);
      return 0;
    } else if (A == "--domains" || A.rfind("--domains=", 0) == 0) {
      std::string List;
      if (A == "--domains") {
        auto V = NextValue(I, "--domains");
        if (!V)
          return 1;
        List = *V;
      } else {
        List = A.substr(std::string("--domains=").size());
      }
      std::string Err;
      std::optional<DomainSet> DS = DomainSet::parse(List, Err);
      if (!DS) {
        std::fprintf(stderr, "astral-cli: error: --domains: %s\n",
                     Err.c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [DS](AnalyzerOptions &O) { O.Domains = *DS; });
    } else if (A == "--octagons") {
      WarnDeprecated(A, "--domains=... (octagons are on by default)");
      Cli.FlagOps.push_back([](AnalyzerOptions &O) {
        O.Domains.enable(DomainKind::Octagon);
      });
    } else if (A == "--no-octagons") {
      WarnDeprecated(A, "--domains= without 'octagon'");
      Cli.FlagOps.push_back([](AnalyzerOptions &O) {
        O.Domains.enable(DomainKind::Octagon, false);
      });
    } else if (A == "--no-ellipsoids") {
      WarnDeprecated(A, "--domains= without 'ellipsoid'");
      Cli.FlagOps.push_back([](AnalyzerOptions &O) {
        O.Domains.enable(DomainKind::Ellipsoid, false);
      });
    } else if (A == "--no-trees") {
      WarnDeprecated(A, "--domains= without 'tree'");
      Cli.FlagOps.push_back([](AnalyzerOptions &O) {
        O.Domains.enable(DomainKind::DecisionTree, false);
      });
    } else if (A == "--no-clock") {
      WarnDeprecated(A, "--domains= without 'clocked'");
      Cli.FlagOps.push_back([](AnalyzerOptions &O) {
        O.Domains.enable(DomainKind::Clocked, false);
      });
    } else if (A == "--jobs" || A.rfind("--jobs=", 0) == 0) {
      std::string Val;
      if (A == "--jobs") {
        auto V = NextValue(I, "--jobs");
        if (!V)
          return 1;
        Val = *V;
      } else {
        Val = A.substr(std::string("--jobs=").size());
      }
      std::optional<unsigned> N = parseUnsignedFlag(Val);
      if (!N || *N > Scheduler::MaxThreads) {
        std::fprintf(stderr,
                     "astral-cli: error: --jobs expects an integer in "
                     "[0, %u], got '%s'\n",
                     Scheduler::MaxThreads, Val.c_str());
        return 1;
      }
      Cli.FlagOps.push_back([N](AnalyzerOptions &O) { O.Jobs = *N; });
    } else if (A == "--pack-dispatch" || A.rfind("--pack-dispatch=", 0) == 0) {
      std::string Val;
      if (A == "--pack-dispatch") {
        auto V = NextValue(I, "--pack-dispatch");
        if (!V)
          return 1;
        Val = *V;
      } else {
        Val = A.substr(std::string("--pack-dispatch=").size());
      }
      std::optional<PackDispatchMode> Mode;
      if (Val == "seq")
        Mode = PackDispatchMode::Sequential;
      else if (Val == "groups")
        Mode = PackDispatchMode::Groups;
      if (!Mode) {
        std::fprintf(stderr,
                     "astral-cli: error: --pack-dispatch expects 'seq' or "
                     "'groups', got '%s'\n",
                     Val.c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [Mode](AnalyzerOptions &O) { O.PackDispatch = *Mode; });
    } else if (A == "--partition-dispatch" ||
               A.rfind("--partition-dispatch=", 0) == 0) {
      std::string Val;
      if (A == "--partition-dispatch") {
        auto V = NextValue(I, "--partition-dispatch");
        if (!V)
          return 1;
        Val = *V;
      } else {
        Val = A.substr(std::string("--partition-dispatch=").size());
      }
      std::optional<PartitionDispatchMode> Mode;
      if (Val == "seq")
        Mode = PartitionDispatchMode::Sequential;
      else if (Val == "par")
        Mode = PartitionDispatchMode::Parallel;
      if (!Mode) {
        std::fprintf(stderr,
                     "astral-cli: error: --partition-dispatch expects 'seq' "
                     "or 'par', got '%s'\n",
                     Val.c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [Mode](AnalyzerOptions &O) { O.PartitionDispatch = *Mode; });
    } else if (A == "--octagon-closure" ||
               A.rfind("--octagon-closure=", 0) == 0) {
      std::string Val;
      if (A == "--octagon-closure") {
        auto V = NextValue(I, "--octagon-closure");
        if (!V)
          return 1;
        Val = *V;
      } else {
        Val = A.substr(std::string("--octagon-closure=").size());
      }
      std::optional<OctClosureMode> Mode;
      if (Val == "full")
        Mode = OctClosureMode::Full;
      else if (Val == "incremental")
        Mode = OctClosureMode::Incremental;
      if (!Mode) {
        std::fprintf(stderr,
                     "astral-cli: error: --octagon-closure expects 'full' or "
                     "'incremental', got '%s'\n",
                     Val.c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [Mode](AnalyzerOptions &O) { O.OctagonClosure = *Mode; });
    } else if (A == "--no-linearize") {
      Cli.FlagOps.push_back(
          [](AnalyzerOptions &O) { O.EnableLinearization = false; });
    } else if (A == "--no-packing") {
      WarnDeprecated(A, "--domains=interval,clocked");
      Cli.FlagOps.push_back([](AnalyzerOptions &O) {
        O.Domains.enable(DomainKind::Octagon, false);
        O.Domains.enable(DomainKind::Ellipsoid, false);
        O.Domains.enable(DomainKind::DecisionTree, false);
      });
    } else if (A == "--no-thresholds") {
      Cli.FlagOps.push_back(
          [](AnalyzerOptions &O) { O.WideningWithThresholds = false; });
    } else if (A == "--dump-invariants") {
      Cli.DumpInvariants = true;
    } else if (A == "--dump-stats") {
      Cli.DumpStats = true;
    } else if (A == "--json") {
      Cli.Json = true;
    } else if (A == "--quiet") {
      Cli.Quiet = true;
    } else if (A == "--fail-on-alarms") {
      Cli.FailOnAlarms = true;
    } else if (A == "--threshold") {
      auto V = NextValue(I, "--threshold");
      if (!V)
        return 1;
      std::optional<double> T = parseDoubleFlag(*V);
      if (!T) {
        std::fprintf(stderr,
                     "astral-cli: error: --threshold expects a number, "
                     "got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [T](AnalyzerOptions &O) { O.ExtraThresholds.push_back(*T); });
    } else if (A == "--unroll") {
      auto V = NextValue(I, "--unroll");
      if (!V)
        return 1;
      std::optional<unsigned> N = parseUnsignedFlag(*V);
      if (!N) {
        std::fprintf(stderr,
                     "astral-cli: error: --unroll expects a non-negative "
                     "integer, got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [N](AnalyzerOptions &O) { O.DefaultUnroll = *N; });
    } else if (A == "--max-iterations") {
      auto V = NextValue(I, "--max-iterations");
      if (!V)
        return 1;
      std::optional<unsigned> N = parseUnsignedFlag(*V);
      if (!N || *N == 0) {
        std::fprintf(stderr,
                     "astral-cli: error: --max-iterations expects a "
                     "positive integer, got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cli.FlagOps.push_back(
          [N](AnalyzerOptions &O) { O.MaxIterations = *N; });
    } else if (A == "--clock-max") {
      auto V = NextValue(I, "--clock-max");
      if (!V)
        return 1;
      std::optional<double> T = parseDoubleFlag(*V);
      if (!T || *T <= 0) {
        std::fprintf(stderr,
                     "astral-cli: error: --clock-max expects a positive "
                     "number of ticks, got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cli.FlagOps.push_back([T](AnalyzerOptions &O) { O.ClockMax = *T; });
    } else if (A == "--entry") {
      auto V = NextValue(I, "--entry");
      if (!V)
        return 1;
      std::string Fn = *V;
      Cli.FlagOps.push_back(
          [Fn](AnalyzerOptions &O) { O.EntryFunction = Fn; });
    } else if (A == "--partition") {
      auto V = NextValue(I, "--partition");
      if (!V)
        return 1;
      std::string Fn = *V;
      Cli.FlagOps.push_back(
          [Fn](AnalyzerOptions &O) { O.PartitionFunctions.insert(Fn); });
    } else if (A == "--volatile") {
      auto V = NextValue(I, "--volatile");
      if (!V)
        return 1;
      std::optional<VolatileSpec> Spec = parseVolatileFlag(*V);
      if (!Spec) {
        std::fprintf(stderr,
                     "astral-cli: error: --volatile expects name=lo:hi, "
                     "got '%s'\n",
                     V->c_str());
        return 1;
      }
      Cli.FlagOps.push_back([Spec](AnalyzerOptions &O) {
        O.VolatileRanges[Spec->Name] = Interval(Spec->Lo, Spec->Hi);
      });
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "astral-cli: error: unknown flag '%s'\n",
                   A.c_str());
      printUsage(stderr);
      return 1;
    } else if (A.empty() || A[0] != '-' || A == "-") {
      Cli.InputPaths.push_back(A);
    }
  }

  if (Cli.InputPaths.empty()) {
    printUsage(stderr);
    return 1;
  }
  // A second '-' would read an already-drained stdin as an empty program.
  if (std::count(Cli.InputPaths.begin(), Cli.InputPaths.end(), "-") > 1) {
    std::fprintf(stderr, "astral-cli: error: stdin ('-') may be given only "
                         "once\n");
    return 1;
  }

  // Build every input up front (the batch is scheduled as a whole).
  std::vector<AnalysisInput> Inputs;
  for (const std::string &Path : Cli.InputPaths) {
    std::optional<std::string> Text = readFile(Path);
    if (!Text) {
      std::fprintf(stderr, "astral-cli: error: cannot read '%s'\n",
                   Path.c_str());
      return 1;
    }

    AnalysisInput In;
    In.FileName = Path;
    In.Source = *Text;
    if (looksLikeCxxHarness(*Text)) {
      std::optional<std::string> Embedded = extractRawString(*Text);
      if (!Embedded) {
        std::fprintf(stderr,
                     "astral-cli: error: '%s' is a C++ harness with no "
                     "embedded input program\n",
                     Path.c_str());
        return 1;
      }
      if (!Cli.Quiet && !Cli.Json)
        std::fprintf(stderr,
                     "astral-cli: note: extracted the embedded input program "
                     "from C++ harness '%s'\n",
                     Path.c_str());
      In.Source = *Embedded;
    }

    // Defaults, then the input's @astral spec directives, then command-line
    // flags — so flags override directives, and directives override
    // defaults.
    In.Options = AnalyzerOptions{};
    for (const std::string &W : applySpecDirectives(In.Source, In.Options))
      std::fprintf(stderr, "astral-cli: warning: %s: %s\n", Path.c_str(),
                   W.c_str());
    for (const auto &Op : Cli.FlagOps)
      Op(In.Options);
    if (Cli.DumpInvariants)
      In.Options.RecordLoopInvariants = true;

    preloadIncludes(In.Source, dirName(Path), In.Headers);
    Inputs.push_back(std::move(In));
  }

  std::vector<AnalysisResult> Results = AnalysisSession::analyzeBatch(Inputs);

  bool Batch = Results.size() > 1;
  bool AnyFrontendError = false, AnyAlarm = false;
  if (Cli.Json && Batch)
    std::printf("[\n");
  for (size_t I = 0; I < Results.size(); ++I) {
    const AnalysisResult &R = Results[I];
    const std::string &Path = Cli.InputPaths[I];
    AnyFrontendError = AnyFrontendError || !R.FrontendOk;
    AnyAlarm = AnyAlarm || !R.Alarms.empty();
    if (Cli.Json) {
      printJsonReport(Cli, Path, R);
      if (Batch && I + 1 < Results.size())
        std::printf(",\n");
    } else if (!R.FrontendOk) {
      std::fprintf(stderr, "astral-cli: frontend errors in '%s':\n%s\n",
                   Path.c_str(), R.FrontendErrors.c_str());
    } else {
      if (Batch && I > 0)
        std::printf("\n");
      printTextReport(Cli, Path, R);
    }
    // Stats go to stderr: they are work-metering figures outside the
    // byte-identical report guarantee, so they must never contaminate the
    // golden-diffed stdout (notably under --json).
    if (Cli.DumpStats)
      std::fprintf(stderr, "=== stats: %s ===\n%s", Path.c_str(),
                   R.Stats.toString().c_str());
  }
  if (Cli.Json && Batch)
    std::printf("]\n");

  if (AnyFrontendError)
    return 2;
  if (Cli.FailOnAlarms && AnyAlarm)
    return 3;
  return 0;
}
