//===- examples/flight_control.cpp - Verify a family member --------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// End-to-end scenario: verify a member of the periodic synchronous program
// family (the fly-by-wire-style workload of Sect. 4) with the full
// analyzer — the Sect. 3 workflow: the analyzer was refined by
// specialists, the end-user adapts it "by appropriate choice of some
// parameters" (input ranges, thresholds, functions to partition).
//
// With no arguments a hand-written reference member (embedded below, also
// analyzable directly with `astral-cli examples/flight_control.cpp`) is
// verified; with arguments a fresh member is generated:
//
//   $ ./examples/flight_control [lines] [seed]
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"
#include "codegen/FamilyGenerator.h"

#include <cstdio>
#include <cstdlib>

using namespace astral;

namespace {
/// The reference member: a miniature fly-by-wire control loop — filtered
/// stick input, gain scheduling, an autopilot integrator with engage
/// logic, and a clamped surface command. The `@astral` comment directives
/// carry the Sect. 4 environment specification so astral-cli can analyze
/// the same program stand-alone.
const char *ReferenceProgram = R"(
  /* Reference member of the periodic synchronous family (Sect. 4).
     @astral volatile stick -1 1
     @astral volatile sensed_pitch -60 60
     @astral volatile autopilot_on 0 1
     @astral volatile gain_sel 0 3
     @astral clock-max 3.6e6
     @astral partition select_gain */
  volatile float stick;        /* pilot stick, normalized  */
  volatile float sensed_pitch; /* pitch sensor, degrees    */
  volatile int   autopilot_on; /* engage switch, 0 or 1    */
  volatile int   gain_sel;     /* gain schedule selector   */

  float X; float Y;            /* second-order filter delays */
  float filtered;
  float integrator;
  float command;
  int   engaged_ticks;

  float select_gain(void) {
    float g = 0.25f;
    if (gain_sel == 1) { g = 0.5f; }
    if (gain_sel == 2) { g = 0.75f; }
    if (gain_sel == 3) { g = 1.0f; }
    return g;
  }

  void filter_step(void) {
    float t = stick;
    float Xn = 1.5f * X - 0.7f * Y + t;
    Y = X;
    X = Xn;
    filtered = 0.5f * X;
  }

  int main(void) {
    while (1) {
      float err;
      float g;
      filter_step();
      err = filtered * 30.0f - sensed_pitch;
      g = select_gain();
      if (autopilot_on != 0) {
        integrator = integrator * 0.99f + err * 0.01f;
        engaged_ticks = engaged_ticks + 1;
      } else {
        integrator = 0.0f;
        engaged_ticks = 0;
      }
      command = g * (err + integrator);
      if (command > 25.0f)  { command = 25.0f; }
      if (command < -25.0f) { command = -25.0f; }
      __astral_assert(command <= 25.0f);
      __astral_wait();
    }
    return 0;
  }
)";
} // namespace

int main(int argc, char **argv) {
  AnalysisInput In;
  In.FileName = "flight_control.c";

  if (argc > 1) {
    codegen::GeneratorConfig Config;
    Config.TargetLines = static_cast<unsigned>(std::atoi(argv[1]));
    Config.Seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 2026;

    std::printf("generating a ~%u-line family member (seed %llu)...\n",
                Config.TargetLines,
                static_cast<unsigned long long>(Config.Seed));
    codegen::FamilyProgram FP = codegen::generateFamilyProgram(Config);
    std::printf("  %u lines, %u modules, %zu volatile inputs, %zu partitioned "
                "functions\n",
                FP.LineCount, FP.ModuleCount, FP.VolatileRanges.size(),
                FP.PartitionFunctions.size());

    // The end-user parametrization (Sect. 3.2): environment ranges, the
    // documented widening thresholds, the functions to partition.
    In.Source = FP.Source;
    In.Options.VolatileRanges = FP.VolatileRanges;
    In.Options.PartitionFunctions = FP.PartitionFunctions;
    for (double T : FP.DocumentedThresholds)
      In.Options.ExtraThresholds.push_back(T);
    In.Options.ClockMax = 3.6e6;
  } else {
    std::puts("verifying the embedded reference member "
              "(run with [lines] [seed] to generate one)...");
    In.Source = ReferenceProgram;
    for (const std::string &W : // the @astral block above
         applySpecDirectives(In.Source, In.Options))
      std::fprintf(stderr, "spec warning: %s\n", W.c_str());
  }

  std::puts("analyzing with the full domain stack...");
  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  std::puts("\n== analysis report ==");
  std::printf("  time                 %.2f s\n", R.AnalysisSeconds);
  std::printf("  variables            %llu (%llu used)\n",
              static_cast<unsigned long long>(R.NumVariables),
              static_cast<unsigned long long>(R.NumUsedVariables));
  std::printf("  cells                %llu (%llu from array expansion)\n",
              static_cast<unsigned long long>(R.NumCells),
              static_cast<unsigned long long>(R.ExpandedArrayCells));
  std::printf("  octagon packs        %llu (avg %.1f vars, %zu useful)\n",
              static_cast<unsigned long long>(R.packCount(DomainKind::Octagon)),
              R.avgPackCells(DomainKind::Octagon), R.UsefulOctPacks.size());
  std::printf("  decision-tree packs  %llu\n",
              static_cast<unsigned long long>(R.packCount(DomainKind::DecisionTree)));
  std::printf("  filter (ellipsoid)   %llu\n",
              static_cast<unsigned long long>(R.packCount(DomainKind::Ellipsoid)));
  std::printf("  abstract-state peak  %.1f MB\n",
              R.PeakAbstractBytes / 1048576.0);

  const InvariantCensus &C = R.MainLoopCensus;
  std::puts("  main loop invariant census (Sect. 9.4.1 style):");
  std::printf("    boolean %llu / interval %llu / clock %llu / oct+ %llu / "
              "oct- %llu / trees %llu / ellipsoids %llu\n",
              static_cast<unsigned long long>(C.BoolAssertions),
              static_cast<unsigned long long>(C.IntervalAssertions),
              static_cast<unsigned long long>(C.ClockAssertions),
              static_cast<unsigned long long>(C.OctAdditive),
              static_cast<unsigned long long>(C.OctSubtractive),
              static_cast<unsigned long long>(C.DecisionTrees),
              static_cast<unsigned long long>(C.EllipsoidAssertions));

  std::printf("\n  alarms: %zu\n", R.alarmCount());
  for (const Alarm &A : R.Alarms)
    std::printf("    [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());
  if (R.Alarms.empty())
    std::puts("    none — the program is proved free of run-time errors "
              "under the spec.");
  return 0;
}
