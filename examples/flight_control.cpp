//===- examples/flight_control.cpp - Verify a family member --------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// End-to-end scenario: generate a member of the periodic synchronous
// program family (the fly-by-wire-style workload of Sect. 4), then verify
// it with the full analyzer — the Sect. 3 workflow: the analyzer was
// refined by specialists, the end-user adapts it "by appropriate choice of
// some parameters" (input ranges, thresholds, functions to partition),
// which the generator conveniently documents for its programs.
//
//   $ ./examples/flight_control [lines] [seed]
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "codegen/FamilyGenerator.h"

#include <cstdio>
#include <cstdlib>

using namespace astral;

int main(int argc, char **argv) {
  codegen::GeneratorConfig Config;
  Config.TargetLines = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
                                : 2000;
  Config.Seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 2026;

  std::printf("generating a ~%u-line family member (seed %llu)...\n",
              Config.TargetLines,
              static_cast<unsigned long long>(Config.Seed));
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(Config);
  std::printf("  %u lines, %u modules, %zu volatile inputs, %zu partitioned "
              "functions\n",
              FP.LineCount, FP.ModuleCount, FP.VolatileRanges.size(),
              FP.PartitionFunctions.size());

  // The end-user parametrization (Sect. 3.2): environment ranges, the
  // documented widening thresholds, the functions to partition.
  AnalysisInput In;
  In.FileName = "flight_control.c";
  In.Source = FP.Source;
  In.Options.VolatileRanges = FP.VolatileRanges;
  In.Options.PartitionFunctions = FP.PartitionFunctions;
  for (double T : FP.DocumentedThresholds)
    In.Options.ExtraThresholds.push_back(T);
  In.Options.ClockMax = 3.6e6;

  std::puts("analyzing with the full domain stack...");
  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  std::puts("\n== analysis report ==");
  std::printf("  time                 %.2f s\n", R.AnalysisSeconds);
  std::printf("  variables            %llu (%llu used)\n",
              static_cast<unsigned long long>(R.NumVariables),
              static_cast<unsigned long long>(R.NumUsedVariables));
  std::printf("  cells                %llu (%llu from array expansion)\n",
              static_cast<unsigned long long>(R.NumCells),
              static_cast<unsigned long long>(R.ExpandedArrayCells));
  std::printf("  octagon packs        %llu (avg %.1f vars, %zu useful)\n",
              static_cast<unsigned long long>(R.NumOctPacks),
              R.AvgOctPackSize, R.UsefulOctPacks.size());
  std::printf("  decision-tree packs  %llu\n",
              static_cast<unsigned long long>(R.NumTreePacks));
  std::printf("  filter (ellipsoid)   %llu\n",
              static_cast<unsigned long long>(R.NumEllPacks));
  std::printf("  abstract-state peak  %.1f MB\n",
              R.PeakAbstractBytes / 1048576.0);

  const InvariantCensus &C = R.MainLoopCensus;
  std::puts("  main loop invariant census (Sect. 9.4.1 style):");
  std::printf("    boolean %llu / interval %llu / clock %llu / oct+ %llu / "
              "oct- %llu / trees %llu / ellipsoids %llu\n",
              static_cast<unsigned long long>(C.BoolAssertions),
              static_cast<unsigned long long>(C.IntervalAssertions),
              static_cast<unsigned long long>(C.ClockAssertions),
              static_cast<unsigned long long>(C.OctAdditive),
              static_cast<unsigned long long>(C.OctSubtractive),
              static_cast<unsigned long long>(C.DecisionTrees),
              static_cast<unsigned long long>(C.EllipsoidAssertions));

  std::printf("\n  alarms: %zu\n", R.alarmCount());
  for (const Alarm &A : R.Alarms)
    std::printf("    [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());
  if (R.Alarms.empty())
    std::puts("    none — the program is proved free of run-time errors "
              "under the spec.");
  return 0;
}
