//===- examples/rate_limiter_clocked.cpp - Limiter + clocked counter -----------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Two family idioms in one loop: a rate limiter with feedback (octagon
// domain, Sect. 6.2.2 — intervals alone cannot bound the limited command)
// and an event counter bounded by the clock (clocked domain, Sect. 6.2.1 —
// the counter only ever advances with the tick, so it inherits the maximal
// operating time as its bound instead of the int range). The embedded
// `@astral jobs 2` directive shows an input carrying its own execution
// policy; the report is byte-identical to a sequential run by the
// scheduler's determinism guarantee.
//
//   $ ./examples/rate_limiter_clocked
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

namespace {
const char *LimiterProgram = R"(
  /* Rate-limited actuator command plus an engagement-time counter.
     @astral volatile target -80 80
     @astral volatile enable 0 1
     @astral clock-max 1.0e6
     @astral jobs 2 */
  volatile float target;     /* commanded position */
  volatile int   enable;     /* engagement switch */
  float cmd;                 /* rate-limited output */
  int   run_ticks;           /* ticks spent engaged (clock-bounded) */

  int main(void) {
    while (1) {
      float t = target;
      if (enable > 0) {
        if (t - cmd > 4.0f) { cmd = cmd + 4.0f; }
        else {
          if (cmd - t > 4.0f) { cmd = cmd - 4.0f; }
          else { cmd = t; }
        }
        run_ticks = run_ticks + 1;
      } else {
        cmd = 0.0f;
        run_ticks = 0;
      }
      __astral_assert(cmd > -90.0f);
      __astral_assert(cmd < 90.0f);
      __astral_wait();
    }
    return 0;
  }
)";
} // namespace

int main() {
  std::puts("== rate limiter with feedback + clocked engagement counter ==");

  AnalysisInput In;
  In.FileName = "rate_limiter_clocked.c";
  In.Source = LimiterProgram;
  for (const std::string &W : applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());
  std::printf("spec: jobs=%u (from the @astral jobs directive)\n",
              In.Options.Jobs);

  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  for (const auto &[Name, Itv] : R.VariableRanges)
    std::printf("  %-10s %s\n", Name.c_str(), Itv.toString().c_str());
  std::printf("alarms: %zu\n", R.alarmCount());
  for (const Alarm &A : R.Alarms)
    std::printf("  [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());
  if (!R.Alarms.empty()) {
    std::puts("unexpected alarms: the octagon bounds cmd and the clocked "
              "domain bounds run_ticks");
    return 1;
  }
  std::puts("proved: cmd stays within the limiter envelope; run_ticks is "
            "bounded by the operating time, far from the int range.");
  return 0;
}
