//===- examples/thread_mode_table.cpp - Cross-thread-range walkthrough ------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The cross-thread-range alarm class: a mode variable indexes a gain table,
// and every *single-thread* view is safe — startup parks the mode on a
// valid slot, the bumper thread writes an out-of-table sentinel but never
// subscripts, the lookup thread subscripts but would only ever see the
// startup value in isolation. Only the combination overruns: the lookup
// racing the bumper's sentinel. The analyzer runs each thread's first round
// interference-free as a baseline; an alarm that appears only once rival
// writes flow in is tagged `cross-thread-range` on top of the underlying
// array-bounds report — telling the reviewer "this error needs the other
// thread" instead of leaving them to diff two reports by hand.
//
//   $ ./examples/thread_mode_table
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

namespace {
const char *ModeTableProgram = R"(
  /* A mode bump racing a gain-table lookup.
     @astral thread bump_t bump_mode
     @astral thread lookup_t lookup_gain */
  int mode;      /* shared: table index */
  int gain[8];   /* calibration table */
  int out;

  void bump_mode(void) {
    mode = 12;   /* out-of-table sentinel; this thread never subscripts */
  }

  void lookup_gain(void) {
    out = gain[mode];  /* safe against startup's mode, not the sentinel */
  }

  int main(void) {
    mode = 3;
    return 0;
  }
)";
} // namespace

int main() {
  std::puts("== racing mode bump vs. gain-table lookup: cross-thread range ==");

  AnalysisInput In;
  In.FileName = "thread_mode_table.c";
  In.Source = ModeTableProgram;
  for (const std::string &W : applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());

  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  std::printf("interference rounds: %llu\n",
              (unsigned long long)R.Stats.get("concurrency.rounds"));
  std::printf("alarms: %zu\n", R.alarmCount());
  size_t Bounds = 0, Races = 0, CrossRange = 0;
  for (const Alarm &A : R.Alarms) {
    std::printf("  [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());
    switch (A.Kind) {
    case AlarmKind::ArrayBounds: ++Bounds; break;
    case AlarmKind::DataRace: ++Races; break;
    case AlarmKind::CrossThreadRange: ++CrossRange; break;
    default: break;
    }
  }

  // The full chain must be present: the overrun itself, the race that
  // enables it, and the cross-thread-range tag pinning the causality.
  if (Bounds < 1 || Races != 1 || CrossRange != 1) {
    std::puts("unexpected alarm census: expected the array overrun, exactly "
              "one race on mode, and exactly one cross-thread-range tag");
    return 1;
  }
  std::puts("flagged: the overrun exists only under interference — the "
            "cross-thread-range tag names the rival-induced error class.");
  return 0;
}
