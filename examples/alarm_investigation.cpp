//===- examples/alarm_investigation.cpp - Alarm triage with the slicer ----------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The Sect. 3.3 workflow: when the analyzer reports an alarm, a backward
// slice from the alarm point extracts "the computations that led to the
// alarm". The paper found classical slices prohibitively large and sketched
// *abstract* slices restricted to the variables whose invariants are weak —
// this example runs both and compares their sizes.
//
//   $ ./examples/alarm_investigation
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"
#include "ir/ConstFold.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/Preprocessor.h"
#include "lang/Sema.h"
#include "slicer/Slicer.h"

#include <cstdio>

using namespace astral;

namespace {
const char *BuggyProgram = R"(
  /* @astral volatile raw 0 8
     @astral clock-max 1e6 */
  volatile int raw;         /* sensor, spec: [0, 8] */
  int calib;                /* calibration state */
  int gain;                 /* derived gain */
  int out;
  float unrelated;          /* a lot of code has nothing to do with it */

  int main(void) {
    while (1) {
      unrelated = unrelated * 0.5f + 1.0f;
      calib = raw - 4;            /* may be negative or zero... */
      gain = calib + 4;           /* == raw: still may be 0 */
      out = 1000 / gain;          /* alarm: division may be by zero */
      __astral_wait();
    }
    return 0;
  }
)";
} // namespace

int main() {
  // Run the analyzer to get the alarm.
  AnalysisInput In;
  In.FileName = "buggy.c";
  In.Source = BuggyProgram;
  for (const std::string &W : // the @astral directives above
       applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());
  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }
  std::printf("analysis produced %zu alarm(s):\n", R.alarmCount());
  for (const Alarm &A : R.Alarms)
    std::printf("  [%s] line %u point %u: %s\n", alarmKindName(A.Kind),
                A.Loc.Line, A.Point, A.Message.c_str());
  if (R.Alarms.empty()) {
    std::puts("expected an alarm; nothing to investigate.");
    return 1;
  }

  // Rebuild the IR (the slicer works on the program representation).
  DiagnosticsEngine Diags;
  Preprocessor PP(Diags);
  std::vector<Token> Toks = PP.run(BuggyProgram, "buggy.c");
  AstContext Ast;
  Parser P(std::move(Toks), Ast, Diags);
  P.parseTranslationUnit();
  Sema S(Ast, Diags);
  S.run();
  ir::Lowering L(Ast, Diags);
  std::unique_ptr<ir::Program> Prog = L.run("main");
  if (!Prog) {
    std::puts("lowering failed");
    return 1;
  }
  ir::foldConstants(*Prog);

  Slicer Slice(*Prog);
  uint32_t Criterion = R.Alarms[0].Point;

  std::puts("\n== classical backward slice from the alarm point "
            "(Sect. 3.3) ==");
  SliceResult Full = Slice.backwardSlice(Criterion);
  std::printf("%zu statements:\n%s", Full.StmtCount,
              Full.Rendering.c_str());

  // Abstract slice: only follow variables whose inferred range is weak
  // (here: anything that may be zero or is very wide).
  std::puts("\n== abstract slice (only weak-invariant variables) ==");
  std::set<std::string> WeakNames;
  for (const auto &[Name, Itv] : R.VariableRanges)
    if (Itv.containsZero() || Itv.width() > 1e6)
      WeakNames.insert(Name);
  SliceResult Abs = Slice.backwardSlice(Criterion, [&](ir::VarId V) {
    return WeakNames.count(Prog->var(V).Name) > 0 ||
           !Prog->var(V).IsPersistent;
  });
  std::printf("%zu statements:\n%s", Abs.StmtCount, Abs.Rendering.c_str());

  std::printf("\nslice sizes: classical %zu vs abstract %zu statements\n",
              Full.StmtCount, Abs.StmtCount);
  std::puts("(the unrelated smoothing computation is out of both slices; "
            "the abstract");
  std::puts("slice additionally drops dependences through well-bounded "
            "variables.)");
  return 0;
}
