//===- examples/thread_handoff.cpp - Interference analysis walkthrough ------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The concurrency subsystem on its home turf: a filter thread publishes a
// fused sensor reading, a control thread consumes it — the classic
// unsynchronized producer/consumer handoff. The `@astral thread` directives
// declare the two entry points; the analyzer replaces the single sequential
// pass with Miné-style interference rounds, so the control thread's load of
// `fused` observes the startup value JOINED with everything the filter may
// ever write, and the write/read pair is reported as a data race.
//
// The point of the walkthrough: the race is flagged, yet the value analysis
// stays bounded — `command` inherits the interference join [0,500] instead
// of top, because rival writes are an interval, not chaos. (Each load of a
// shared cell re-observes the join, so the `fused > 400` guard does not
// narrow the *second* load — the flow-insensitive caveat documented in
// docs/concurrency.md.)
//
//   $ ./examples/thread_handoff
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

namespace {
const char *HandoffProgram = R"(
  /* Unsynchronized sensor handoff between two periodic threads.
     @astral thread filter_t filter_step
     @astral thread control_t control_step
     @astral volatile raw 0 1000 */
  volatile int raw;  /* sensor input, externally bounded */
  int fused;         /* shared: written by filter_t, read by control_t */
  int command;       /* control_t's output, private to it */

  void filter_step(void) {
    fused = raw / 2;
  }

  void control_step(void) {
    if (fused > 400) { command = 100; }
    else { command = fused; }
  }

  int main(void) {
    fused = 0;
    command = 0;
    return 0;
  }
)";
} // namespace

int main() {
  std::puts("== unsynchronized thread handoff: interference rounds ==");

  AnalysisInput In;
  In.FileName = "thread_handoff.c";
  In.Source = HandoffProgram;
  for (const std::string &W : applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());
  std::printf("spec: %zu thread(s) declared\n", In.Options.Threads.size());

  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  std::printf("interference rounds: %llu\n",
              (unsigned long long)R.Stats.get("concurrency.rounds"));
  for (const auto &[Name, Itv] : R.VariableRanges)
    std::printf("  %-8s %s\n", Name.c_str(), Itv.toString().c_str());
  std::printf("alarms: %zu\n", R.alarmCount());
  size_t Races = 0, CrossRange = 0;
  for (const Alarm &A : R.Alarms) {
    std::printf("  [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());
    if (A.Kind == AlarmKind::DataRace)
      ++Races;
    if (A.Kind == AlarmKind::CrossThreadRange)
      ++CrossRange;
  }

  // Hand computation: fused = 0 (startup) ⊔ [0,500] (filter writes raw/2),
  // and command inherits that observation — bounded by the interference
  // join, not the int range. Exactly one race — the fused write/read pair;
  // command has a single accessor and the volatile is exempt by design.
  if (Races != 1 || CrossRange != 0) {
    std::puts("unexpected alarm census: the fused handoff must race exactly "
              "once and nothing may be blamed on cross-thread ranges");
    return 1;
  }
  if (R.Stats.get("concurrency.rounds") < 2) {
    std::puts("interference rounds never iterated");
    return 1;
  }
  std::puts("proved: command stays within the interference join even though "
            "the handoff races; the race itself is reported, not silently "
            "widened away.");
  return 0;
}
