//===- examples/filter_verification.cpp - Fig. 1 digital filter ----------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Verifies the paper's flagship example: the simplified second-order
// digital filter of Fig. 1. Interval analysis alone cannot bound the filter
// state (the affine map's coefficient magnitudes exceed 1), while the
// ellipsoid domain of Sect. 6.2.3 captures the invariant
// X^2 - aXY + bY^2 <= k and proves the output bounded. The example runs
// the analysis twice to show exactly that contrast.
//
//   $ ./examples/filter_verification
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

namespace {
const char *FilterProgram = R"(
  /* Fig. 1: second-order digital filtering system.
     B selects reinitialization; otherwise X' = aX - bY + t.
     @astral volatile input -1 1
     @astral volatile reinit 0 1
     @astral clock-max 3.6e6 */
  volatile float input;     /* x(n), bounded by the sensor spec */
  volatile int   reinit;    /* the B switch */
  float X; float Y;         /* unit delays */
  float output;

  void filter_step(void) {
    float t = input;
    if (reinit != 0) {
      Y = t;                /* Y := i */
      X = t;                /* X := j */
    } else {
      float Xn = 1.5f * X - 0.7f * Y + t;   /* a = 1.5, b = 0.7 */
      Y = X;
      X = Xn;
    }
    output = 0.5f * X;
  }

  int main(void) {
    while (1) {
      filter_step();
      __astral_wait();
    }
    return 0;
  }
)";

AnalysisResult run(bool WithEllipsoids) {
  AnalysisInput In;
  In.FileName = "filter.c";
  In.Source = FilterProgram;
  for (const std::string &W : // the @astral directives above
       applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());
  In.Options.Domains.enable(DomainKind::Ellipsoid, WithEllipsoids);
  return Analyzer::analyze(In);
}

Interval rangeOf(const AnalysisResult &R, const char *Name) {
  for (const auto &[N, I] : R.VariableRanges)
    if (N == Name)
      return I;
  return Interval::bottom();
}
} // namespace

int main() {
  std::puts("== Fig. 1 second-order digital filter (a = 1.5, b = 0.7) ==");
  std::puts("Prop. 1 applies: 0 < b < 1 and a^2 - 4b = -0.55 < 0;");
  std::puts("with |t| <= 1, any k >= (1/(1-sqrt(b)))^2 ~ 37.3 is invariant,");
  std::puts("giving |X| <= 2*sqrt(b*k/(4b-a^2)) ~ 13.8.\n");

  AnalysisResult Without = run(/*WithEllipsoids=*/false);
  AnalysisResult With = run(/*WithEllipsoids=*/true);
  if (!With.FrontendOk || !Without.FrontendOk) {
    std::printf("frontend errors:\n%s\n", With.FrontendErrors.c_str());
    return 1;
  }

  std::printf("%-26s %-28s %s\n", "", "intervals only", "with ellipsoids");
  std::printf("%-26s %-28s %s\n", "filter state X",
              rangeOf(Without, "X").toString().c_str(),
              rangeOf(With, "X").toString().c_str());
  std::printf("%-26s %-28s %s\n", "output",
              rangeOf(Without, "output").toString().c_str(),
              rangeOf(With, "output").toString().c_str());
  std::printf("%-26s %-28zu %zu\n", "alarms", Without.alarmCount(),
              With.alarmCount());
  std::printf("%-26s %-28llu %llu\n", "ellipsoid assertions",
              static_cast<unsigned long long>(
                  Without.MainLoopCensus.EllipsoidAssertions),
              static_cast<unsigned long long>(
                  With.MainLoopCensus.EllipsoidAssertions));

  std::puts("\nverdict:");
  if (With.alarmCount() == 0 && Without.alarmCount() > 0)
    std::puts("  the ellipsoid domain eliminates the divergence false "
              "alarms, as in Sect. 6.2.3.");
  else
    std::puts("  unexpected: check the domain configuration.");
  return With.alarmCount() == 0 ? 0 : 1;
}
