//===- examples/interp_table.cpp - Interpolation-table lookup ------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The interpolation-table idiom of the program family (Sect. 4): a bounded
// sensor value is clamped, scaled into a table index, and the output is
// interpolated between two adjacent entries. The analysis has to prove both
// subscripts in bounds (idx and idx + 1) from the clamp structure and bound
// the interpolated output — the kind of table glue that dominates the
// family's volume.
//
//   $ ./examples/interp_table
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

namespace {
const char *InterpProgram = R"(
  /* Interpolation-table lookup over a clamped sensor.
     @astral volatile angle -45 45
     @astral clock-max 3.6e6 */
  volatile float angle;              /* vane sensor, degrees */
  static const float lift_tab[13] = {
    -0.9f, -0.7f, -0.5f, -0.3f, -0.1f, 0.0f,
    0.1f, 0.3f, 0.5f, 0.7f, 0.8f, 0.9f, 1.0f
  };
  float lift;

  int main(void) {
    while (1) {
      float a = angle;
      if (a < -30.0f) { a = -30.0f; }
      if (a > 30.0f)  { a = 30.0f; }
      /* map [-30, 30] onto table positions [0, 12] */
      float pos = (a + 30.0f) * 0.2f;
      int idx = (int)pos;
      if (idx > 11) { idx = 11; }
      if (idx < 0)  { idx = 0; }
      float frac = pos - (float)idx;
      lift = lift_tab[idx] +
             (lift_tab[idx + 1] - lift_tab[idx]) * frac;
      __astral_assert(lift > -30.0f);
      __astral_assert(lift < 30.0f);
      __astral_wait();
    }
    return 0;
  }
)";
} // namespace

int main() {
  std::puts("== interpolation-table lookup (family glue idiom) ==");

  AnalysisInput In;
  In.FileName = "interp_table.c";
  In.Source = InterpProgram;
  for (const std::string &W : applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());

  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  std::printf("cells: %llu, octagon packs: %llu\n",
              static_cast<unsigned long long>(R.NumCells),
              static_cast<unsigned long long>(R.packCount(DomainKind::Octagon)));
  for (const auto &[Name, Itv] : R.VariableRanges)
    std::printf("  %-8s %s\n", Name.c_str(), Itv.toString().c_str());

  std::printf("alarms: %zu\n", R.alarmCount());
  for (const Alarm &A : R.Alarms)
    std::printf("  [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());
  if (!R.Alarms.empty()) {
    std::puts("unexpected alarms: both subscripts should be proved in "
              "bounds from the clamps");
    return 1;
  }
  std::puts("proved: idx and idx+1 stay inside lift_tab[13]; lift bounded.");
  return 0;
}
