//===- examples/quickstart.cpp - Analyze your first program --------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Quickstart: feed a C program (as a string) plus its environment
// specification (volatile input ranges, maximal operating time) to the
// analyzer; inspect inferred ranges and alarms.
//
//   $ ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

int main() {
  // A miniature periodic synchronous program (Sect. 4 shape): read inputs,
  // compute, wait for the next clock tick.
  AnalysisInput In;
  In.FileName = "quickstart.c";
  In.Source = R"(
    /* Environment specification (Sect. 4): ranges for the volatile inputs
       and the maximal continuous operating time in clock ticks (e.g. 10 h
       at 100 Hz). Applied below; astral-cli reads it the same way.
       @astral volatile speed 0 300
       @astral volatile brake 0 1
       @astral clock-max 3.6e6 */
    volatile float speed;     /* hardware register, spec'd below */
    volatile int   brake;     /* 0 or 1 */
    float smoothed;
    int   brake_count;

    int main(void) {
      while (1) {
        /* exponential smoothing: needs widening thresholds */
        smoothed = 0.875f * smoothed + 0.125f * speed;
        /* event counter: needs the clocked domain */
        if (brake > 0) { brake_count = brake_count + 1; }
        /* checked assertion */
        __astral_assert(smoothed < 500.0f);
        __astral_wait();
      }
      return 0;
    }
  )";

  // The program carries its own environment specification as @astral
  // comment directives; apply them.
  for (const std::string &W : applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());

  AnalysisResult R = Analyzer::analyze(In);
  if (!R.FrontendOk) {
    std::printf("frontend errors:\n%s\n", R.FrontendErrors.c_str());
    return 1;
  }

  std::puts("== quickstart: analysis finished ==");
  std::printf("analysis time: %.3f s, %llu cells, %llu octagon packs\n",
              R.AnalysisSeconds,
              static_cast<unsigned long long>(R.NumCells),
              static_cast<unsigned long long>(R.packCount(DomainKind::Octagon)));

  std::puts("\ninferred ranges at the main loop head:");
  for (const auto &[Name, Itv] : R.VariableRanges)
    std::printf("  %-12s in %s\n", Name.c_str(), Itv.toString().c_str());

  std::puts("\nalarms:");
  if (R.Alarms.empty())
    std::puts("  none — every checked operation is proved safe");
  for (const Alarm &A : R.Alarms)
    std::printf("  [%s] line %u: %s%s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str(), A.Definite ? " (definite)" : "");
  return 0;
}
