//===- examples/partitioned_switch.cpp - Mode-correlated controller ------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The trace-partitioning idiom (Sect. 7.1.5): a controller selects a clamp
// limit from a mode switch, then later selects the matching gain from the
// *same* switch. Joining after the first test forgets the correlation
// between mode and limit, so interval analysis sees (limit 20, gain 8) —
// a spurious trace — and raises an assertion alarm. Delaying the merge
// inside the selected function (the end-user `@astral partition` of
// Sect. 3.2) keeps the traces apart and proves the bound. The example runs
// both configurations to show the contrast.
//
//   $ ./examples/partitioned_switch
//
//===----------------------------------------------------------------------===//

#include "analyzer/Analyzer.h"
#include "analyzer/SpecDirectives.h"

#include <cstdio>

using namespace astral;

namespace {
const char *SwitchProgram = R"(
  /* Mode-correlated clamp + gain pair (needs trace partitioning).
     @astral volatile mode 0 1
     @astral volatile meas -50 50
     @astral partition control_step
     @astral clock-max 3.6e6 */
  volatile int   mode;      /* 0 = fine, 1 = coarse */
  volatile float meas;
  float out;

  /* Clamp helper, called from inside the partitioned region: each mode
     partition inlines it with its own limit, so the call site sees a
     width-2 disjunction — the call-context dispatch grain fans exactly
     here (`call_dispatch.dispatched` in --dump-stats). */
  float clamp_mag(float v, float limit) {
    if (v > limit)  { v = limit; }
    if (v < -limit) { v = -limit; }
    return v;
  }

  void control_step(void) {
    float limit;
    float m = meas;
    if (mode == 0) { limit = 5.0f; } else { limit = 20.0f; }
    m = clamp_mag(m, limit);
    if (mode == 0) { out = m * 8.0f; }   /* fine: |m| <= 5  -> |out| <= 40 */
    else           { out = m * 2.0f; }   /* coarse: |m| <= 20 -> |out| <= 40 */
  }

  int main(void) {
    while (1) {
      control_step();
      __astral_assert(out > -41.0f);
      __astral_assert(out < 41.0f);
      __astral_wait();
    }
    return 0;
  }
)";

AnalysisResult run(bool WithPartitioning) {
  AnalysisInput In;
  In.FileName = "partitioned_switch.c";
  In.Source = SwitchProgram;
  for (const std::string &W : applySpecDirectives(In.Source, In.Options))
    std::fprintf(stderr, "spec warning: %s\n", W.c_str());
  if (!WithPartitioning)
    In.Options.PartitionFunctions.clear();
  return Analyzer::analyze(In);
}
} // namespace

int main() {
  std::puts("== mode-correlated switch controller (Sect. 7.1.5) ==");

  AnalysisResult Joined = run(/*WithPartitioning=*/false);
  if (!Joined.FrontendOk) {
    std::printf("frontend errors:\n%s\n", Joined.FrontendErrors.c_str());
    return 1;
  }
  std::printf("without partitioning: %zu alarm(s) — the mode/limit "
              "correlation is lost at the join\n",
              Joined.alarmCount());

  AnalysisResult Split = run(/*WithPartitioning=*/true);
  std::printf("with @astral partition control_step: %zu alarm(s)\n",
              Split.alarmCount());
  for (const Alarm &A : Split.Alarms)
    std::printf("  [%s] line %u: %s\n", alarmKindName(A.Kind), A.Loc.Line,
                A.Message.c_str());

  if (Joined.alarmCount() == 0) {
    std::puts("expected the joined analysis to raise the assertion alarm");
    return 1;
  }
  if (!Split.Alarms.empty()) {
    std::puts("unexpected: partitioning should prove |out| <= 40");
    return 1;
  }
  std::puts("proved: per-trace analysis keeps (limit, gain) consistent and "
            "bounds the output.");
  return 0;
}
