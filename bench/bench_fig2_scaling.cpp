//===- bench/bench_fig2_scaling.cpp - Fig. 2: time vs program size ------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E1 (DESIGN.md): Fig. 2 plots total analysis time against
// program size (kLOC) for the family of programs, "using a slow but precise
// iteration strategy", on a 2.4 GHz PC: roughly 400 s at 10 kLOC up to
// ~7,300 s at 75 kLOC — super-linear but polynomial growth. We regenerate
// the same series on family members produced by the generator; the shape
// (monotone, super-linear, no blow-up) is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <vector>

using namespace astral;
using namespace astral::benchutil;

namespace {
// Paper series read off Fig. 2 (approximate, seconds on 2003 hardware).
struct PaperPoint {
  double KLoc;
  double Seconds;
};
const PaperPoint PaperSeries[] = {
    {10, 400}, {20, 1100}, {40, 2700}, {60, 5000}, {75, 7300}};
} // namespace

int main() {
  std::puts("E1 / Fig. 2 — total analysis time vs program size");
  std::puts("paper series (2.4 GHz PC, 2003):");
  for (const PaperPoint &P : PaperSeries)
    std::printf("  %5.0f kLOC  ->  %6.0f s\n", P.KLoc, P.Seconds);
  hr();

  std::vector<unsigned> Lines = {1000, 2000, 4000, 8000};
  if (fullRuns()) {
    Lines.push_back(16000);
    Lines.push_back(32000);
    Lines.push_back(75000);
  }

  std::puts("measured (this machine, full domain stack, packing "
            "optimization off):");
  std::printf("  %8s %9s %9s %10s %8s %10s\n", "lines", "kLOC", "time(s)",
              "s/kLOC", "alarms", "cells");
  for (unsigned L : Lines) {
    codegen::GeneratorConfig C;
    C.TargetLines = L;
    C.Seed = 1234;
    codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);
    AnalysisResult R = analyzeFamily(FP);
    if (!R.FrontendOk) {
      std::printf("  frontend failed: %s\n", R.FrontendErrors.c_str());
      return 1;
    }
    double KLoc = FP.LineCount / 1000.0;
    double PerK = R.AnalysisSeconds / KLoc;
    std::printf("  %8u %9.1f %9.2f %10.3f %8zu %10llu\n", FP.LineCount, KLoc,
                R.AnalysisSeconds, PerK, R.alarmCount(),
                static_cast<unsigned long long>(R.NumCells));
  }
  hr();
  std::puts("expected shape: time grows monotonically and at least linearly "
            "in kLOC (s/kLOC");
  std::puts("non-decreasing), matching the curvature of Fig. 2.");
  return 0;
}
