//===- bench/bench_parallel_jobs.cpp - Speedup vs --jobs ----------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The parallel-analyzer experiment (Monniaux, "The parallel implementation
// of the Astrée static analyzer"): wall-clock speedup against the worker
// count on the largest quick family member, in the granularities the
// Scheduler offers:
//
//   single — one file. AnalyzerOptions::Jobs fans the per-(domain, pack)
//            lattice slots out over the pool, and --pack-dispatch picks the
//            within-file transfer grain: `seq` keeps the channel-feeding
//            reduction chains fully sequential, `groups` (the default)
//            dispatches disjoint pack groups of the PackGroupPlan to
//            workers with a deterministic channel merge. The series carries
//            both dispatch modes so the new grain's contribution is
//            visible in isolation.
//   partition — examples/partitioned_switch.cpp under --partition-dispatch
//            seq vs par: the trace-partition grain, fanning the delayed
//            disjunction's environments over the pool per statement. The
//            controller is small, so each configuration is timed over
//            repeated whole analyses.
//   call   — the same example under --call-dispatch seq vs par: the
//            call-context grain, fanning a call site's disjunction of
//            calling contexts over the pool (the clamp helper is called
//            from the width-2 mode disjunction).
//   batch  — AnalysisSession::analyzeBatch schedules whole copies of the
//            file across the same pool (the paper family is multi-module;
//            multi-file throughput is the production shape). This is the
//            near-linear series.
//
// Every configuration's report is checked identical to the sequential one
// (the determinism guarantee); a mismatch fails the bench.
//
// ASTRAL_BENCH_SMOKE=1 runs the PR-time regression gate instead of the full
// series: on the 8-kLOC fig2 member, --jobs=8 grouped dispatch must not be
// slower than --jobs=8 sequential dispatch by more than 10% (best of three
// interleaved runs each), --jobs=8 --call-dispatch=par must not be slower
// than --call-dispatch=seq by more than 10% under the same protocol, and
// the call-summary memo must record at least one hit on the member
// (iterator.call_memo_hits > 0) — a dead memo is pure overhead. Exit 1 on
// violation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyzer/AnalysisSession.h"
#include "analyzer/SpecDirectives.h"
#include "support/Timer.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace astral;
using namespace astral::benchutil;

namespace {

/// Report fingerprint for the determinism check.
std::string fingerprint(const AnalysisResult &R) {
  std::string F = std::to_string(R.alarmCount());
  for (const Alarm &A : R.Alarms)
    F += "|" + std::to_string(A.Loc.Line) + ":" + A.Message;
  for (const auto &[Name, Itv] : R.VariableRanges)
    F += "|" + Name + "=" + Itv.toString();
  F += "|" + R.MainLoopInvariant;
  return F;
}

const char *dispatchName(PackDispatchMode M) {
  return M == PackDispatchMode::Groups ? "groups" : "seq";
}

const char *partitionDispatchName(PartitionDispatchMode M) {
  return M == PartitionDispatchMode::Parallel ? "par" : "seq";
}

const char *callDispatchName(CallDispatchMode M) {
  return M == CallDispatchMode::Parallel ? "par" : "seq";
}

/// Loads examples/partitioned_switch.cpp and extracts the input program it
/// embeds as a raw-string literal (the longest one, the same convention
/// astral-cli applies to example harnesses). The bench scripts run from the
/// repo root; the parent fallbacks cover a build-dir cwd.
std::string loadPartitionedExample() {
  std::string Text;
  for (const char *Path : {"examples/partitioned_switch.cpp",
                           "../examples/partitioned_switch.cpp",
                           "../../examples/partitioned_switch.cpp"}) {
    std::ifstream In(Path);
    if (In) {
      std::ostringstream SS;
      SS << In.rdbuf();
      Text = SS.str();
      break;
    }
  }
  std::string Best;
  size_t Pos = 0;
  while ((Pos = Text.find("R\"(", Pos)) != std::string::npos) {
    size_t Start = Pos + 3;
    size_t End = Text.find(")\"", Start);
    if (End == std::string::npos)
      break;
    if (End - Start > Best.size())
      Best = Text.substr(Start, End - Start);
    Pos = End + 2;
  }
  return Best;
}

/// One timed single-file run.
AnalysisResult runSingle(const codegen::FamilyProgram &FP, unsigned Jobs,
                         PackDispatchMode Dispatch, double &Seconds) {
  AnalysisInput In = familyInput(FP);
  In.Options.Jobs = Jobs;
  In.Options.PackDispatch = Dispatch;
  Timer T;
  AnalysisResult R = Analyzer::analyze(In);
  Seconds = T.seconds();
  return R;
}

/// PR-time smoke gate: grouped dispatch must not regress the 8-kLOC member.
int runSmoke() {
  std::puts("parallel smoke gate — 8-kLOC fig2 member, --jobs=8, "
            "groups vs seq dispatch (fail when groups > 1.10 * seq)");
  codegen::GeneratorConfig C;
  C.TargetLines = 8000;
  C.Seed = 1234;
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);

  // Interleave the two modes (A/B/A/B/A/B) and take the best of three
  // each: a noisy-neighbor burst on a shared CI runner then has to land on
  // every run of one mode and none of the other to move the gate, instead
  // of on one contiguous back-to-back pair.
  std::string SeqPrint, GroupsPrint;
  double SeqSec = 0.0, GroupsSec = 0.0;
  for (int Run = 0; Run < 3; ++Run) {
    for (PackDispatchMode Mode :
         {PackDispatchMode::Sequential, PackDispatchMode::Groups}) {
      double Sec = 0.0;
      AnalysisResult R = runSingle(FP, 8, Mode, Sec);
      if (!R.FrontendOk) {
        std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
        return 1;
      }
      bool Seq = Mode == PackDispatchMode::Sequential;
      (Seq ? SeqPrint : GroupsPrint) = fingerprint(R);
      double &Best = Seq ? SeqSec : GroupsSec;
      Best = Run == 0 ? Sec : std::min(Best, Sec);
    }
  }
  double Ratio = GroupsSec / SeqSec;
  std::printf("PARALLEL smoke jobs=8 seq=%.3f groups=%.3f ratio=%.3f\n",
              SeqSec, GroupsSec, Ratio);
  if (GroupsPrint != SeqPrint) {
    std::puts("DETERMINISM VIOLATION: smoke groups report differs from seq");
    return 1;
  }
  if (Ratio > 1.10) {
    std::printf("SMOKE GATE FAILED: grouped dispatch is %.0f%% slower than "
                "sequential (budget: 10%%)\n",
                (Ratio - 1.0) * 100.0);
    return 1;
  }

  // Call-context dispatch must not tax the member either: the same
  // interleaved best-of-three protocol, --call-dispatch seq vs par.
  std::string CallSeqPrint, CallParPrint;
  double CallSeqSec = 0.0, CallParSec = 0.0;
  for (int Run = 0; Run < 3; ++Run) {
    for (CallDispatchMode Mode :
         {CallDispatchMode::Sequential, CallDispatchMode::Parallel}) {
      AnalysisInput In = familyInput(FP);
      In.Options.Jobs = 8;
      In.Options.CallDispatch = Mode;
      Timer T;
      AnalysisResult R = Analyzer::analyze(In);
      double Sec = T.seconds();
      if (!R.FrontendOk) {
        std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
        return 1;
      }
      bool Seq = Mode == CallDispatchMode::Sequential;
      (Seq ? CallSeqPrint : CallParPrint) = fingerprint(R);
      double &Best = Seq ? CallSeqSec : CallParSec;
      Best = Run == 0 ? Sec : std::min(Best, Sec);
    }
  }
  double CallRatio = CallParSec / CallSeqSec;
  std::printf("PARALLEL smoke jobs=8 call-seq=%.3f call-par=%.3f "
              "ratio=%.3f\n",
              CallSeqSec, CallParSec, CallRatio);
  if (CallParPrint != CallSeqPrint) {
    std::puts("DETERMINISM VIOLATION: smoke call-par report differs from "
              "call-seq");
    return 1;
  }
  // The perf half of the gate needs real parallel hardware: on a single
  // hardware thread, 8 workers fanning call contexts out is pure
  // scheduling overhead with zero parallelism to buy it back, so the
  // ratio only measures the host, not the code. The byte-identity check
  // above still ran; the perf budget is enforced where it is meaningful
  // (the CI runners are multi-core).
  if (std::thread::hardware_concurrency() < 2) {
    std::puts("note: single hardware thread — call par-vs-seq perf budget "
              "not enforced (determinism was)");
  } else if (CallRatio > 1.10) {
    std::printf("SMOKE GATE FAILED: call dispatch par is %.0f%% slower than "
                "seq (budget: 10%%)\n",
                (CallRatio - 1.0) * 100.0);
    return 1;
  }

  // The call-summary memo must be live on the member: the narrowing
  // re-execution revisits calls with bitwise-identical inputs, so zero hits
  // means the memo key or lookup broke and every analysis pays the
  // recording overhead for nothing.
  {
    AnalysisSession S(familyInput(FP));
    uint64_t Hits =
        S.runAbstractExecution().Stats.get("iterator.call_memo_hits");
    std::printf("PARALLEL smoke call_memo_hits=%llu\n",
                static_cast<unsigned long long>(Hits));
    if (Hits == 0) {
      std::puts("SMOKE GATE FAILED: iterator.call_memo_hits == 0 on the "
                "fig2 member (memo is dead)");
      return 1;
    }
  }

  std::puts("smoke gate passed");
  return 0;
}

} // namespace

int main() {
  const char *SmokeEnv = std::getenv("ASTRAL_BENCH_SMOKE");
  if (SmokeEnv && SmokeEnv[0] == '1')
    return runSmoke();

  unsigned Lines = fullRuns() ? 16000 : 4000;
  unsigned Copies = 8;
  unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel speedup vs jobs — family member of ~%u lines, "
              "batch of %u copies\n",
              Lines, Copies);
  std::printf("PARALLEL hardware cores=%u\n", Cores);
  if (Cores == 1)
    std::puts("note: single hardware thread — speedups are bounded by 1.0 "
              "here; the series only checks overhead and determinism.");
  hr();

  codegen::GeneratorConfig C;
  C.TargetLines = Lines;
  C.Seed = 1234;
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);

  const unsigned JobsSeries[] = {1, 2, 4, 8};

  // -- single-file: lattice slots + pack-group transfer dispatch ----------
  // Dispatch is the inner dimension so each jobs value's seq/groups runs
  // are adjacent in process age (repeated analyses warm the allocator;
  // adjacent runs compare more fairly than two whole passes would).
  std::string SeqPrint;
  double SeqSingle = 0.0;
  for (unsigned Jobs : JobsSeries) {
    for (PackDispatchMode Dispatch :
         {PackDispatchMode::Sequential, PackDispatchMode::Groups}) {
      double Sec = 0.0;
      AnalysisResult R = runSingle(FP, Jobs, Dispatch, Sec);
      if (!R.FrontendOk) {
        std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
        return 1;
      }
      std::string Print = fingerprint(R);
      if (Jobs == 1 && Dispatch == PackDispatchMode::Sequential) {
        SeqPrint = Print;
        SeqSingle = Sec;
      } else if (Print != SeqPrint) {
        std::printf("DETERMINISM VIOLATION: single jobs=%u dispatch=%s "
                    "report differs\n",
                    Jobs, dispatchName(Dispatch));
        return 1;
      }
      std::printf("PARALLEL single jobs=%u dispatch=%s seconds=%.3f "
                  "speedup=%.2f alarms=%zu\n",
                  Jobs, dispatchName(Dispatch), Sec, SeqSingle / Sec,
                  R.alarmCount());
    }
  }
  hr();

  // -- partition: trace-partition dispatch on the partitioned example -----
  // The partition dimension is the inner loop for the same warm-allocator
  // fairness as the single-file series above.
  std::string PartSource = loadPartitionedExample();
  if (PartSource.empty()) {
    std::puts("error: examples/partitioned_switch.cpp not found from this "
              "cwd — run from the repo root.");
    return 1;
  }
  const unsigned PartReps = fullRuns() ? 80 : 16;
  std::string PartSeqPrint;
  double PartSeqSec = 0.0;
  for (unsigned Jobs : JobsSeries) {
    for (PartitionDispatchMode Mode : {PartitionDispatchMode::Sequential,
                                       PartitionDispatchMode::Parallel}) {
      AnalysisInput In;
      In.Source = PartSource;
      applySpecDirectives(In.Source, In.Options);
      In.Options.Jobs = Jobs;
      In.Options.PartitionDispatch = Mode;
      std::string Print;
      Timer T;
      for (unsigned Rep = 0; Rep < PartReps; ++Rep) {
        AnalysisResult R = Analyzer::analyze(In);
        if (!R.FrontendOk) {
          std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
          return 1;
        }
        Print = fingerprint(R);
      }
      double Sec = T.seconds();
      if (Jobs == 1 && Mode == PartitionDispatchMode::Sequential) {
        PartSeqPrint = Print;
        PartSeqSec = Sec;
      } else if (Print != PartSeqPrint) {
        std::printf("DETERMINISM VIOLATION: partition jobs=%u dispatch=%s "
                    "report differs\n",
                    Jobs, partitionDispatchName(Mode));
        return 1;
      }
      std::printf("PARALLEL partition jobs=%u dispatch=%s seconds=%.3f "
                  "speedup=%.2f reps=%u\n",
                  Jobs, partitionDispatchName(Mode), Sec, PartSeqSec / Sec,
                  PartReps);
    }
  }
  hr();

  // -- call: call-context dispatch on the partitioned example -------------
  // Same repeated-analysis protocol as the partition series: the clamp
  // helper is called from the width-2 mode disjunction, so each analysis
  // fans the calling contexts out under --call-dispatch=par.
  std::string CallSeqPrint;
  double CallSeqSec = 0.0;
  for (unsigned Jobs : JobsSeries) {
    for (CallDispatchMode Mode :
         {CallDispatchMode::Sequential, CallDispatchMode::Parallel}) {
      AnalysisInput In;
      In.Source = PartSource;
      applySpecDirectives(In.Source, In.Options);
      In.Options.Jobs = Jobs;
      In.Options.CallDispatch = Mode;
      std::string Print;
      Timer T;
      for (unsigned Rep = 0; Rep < PartReps; ++Rep) {
        AnalysisResult R = Analyzer::analyze(In);
        if (!R.FrontendOk) {
          std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
          return 1;
        }
        Print = fingerprint(R);
      }
      double Sec = T.seconds();
      if (Jobs == 1 && Mode == CallDispatchMode::Sequential) {
        CallSeqPrint = Print;
        CallSeqSec = Sec;
      } else if (Print != CallSeqPrint) {
        std::printf("DETERMINISM VIOLATION: call jobs=%u dispatch=%s "
                    "report differs\n",
                    Jobs, callDispatchName(Mode));
        return 1;
      }
      std::printf("PARALLEL call jobs=%u dispatch=%s seconds=%.3f "
                  "speedup=%.2f reps=%u\n",
                  Jobs, callDispatchName(Mode), Sec, CallSeqSec / Sec,
                  PartReps);
    }
  }
  hr();

  // -- batch: whole files across the pool ---------------------------------
  double SeqBatch = 0.0;
  for (unsigned Jobs : JobsSeries) {
    std::vector<AnalysisInput> Inputs;
    for (unsigned I = 0; I < Copies; ++I) {
      AnalysisInput In = familyInput(FP);
      In.Options.Jobs = Jobs;
      In.FileName = "member" + std::to_string(I) + ".c";
      Inputs.push_back(std::move(In));
    }
    Timer T;
    std::vector<AnalysisResult> Results =
        AnalysisSession::analyzeBatch(Inputs);
    double Sec = T.seconds();
    for (const AnalysisResult &R : Results)
      if (fingerprint(R) != SeqPrint) {
        std::printf("DETERMINISM VIOLATION: batch jobs=%u report differs\n",
                    Jobs);
        return 1;
      }
    if (Jobs == 1)
      SeqBatch = Sec;
    std::printf("PARALLEL batch jobs=%u files=%u seconds=%.3f speedup=%.2f\n",
                Jobs, Copies, Sec, SeqBatch / Sec);
  }
  hr();
  std::puts("expected shape: batch speedup grows toward the worker count "
            "(whole-file dispatch);");
  std::puts("single-file speedup tracks how much of the member's guard work "
            "falls into disjoint pack groups (dispatch=groups) on a "
            "multi-core host.");
  return 0;
}
