//===- bench/bench_parallel_jobs.cpp - Speedup vs --jobs ----------------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// The parallel-analyzer experiment (Monniaux, "The parallel implementation
// of the Astrée static analyzer"): wall-clock speedup against the worker
// count on the largest quick family member, in both granularities the
// Scheduler offers:
//
//   single — one file, AnalyzerOptions::Jobs fans the per-(domain, pack)
//            lattice slots out over the pool. The transfer chains stay
//            sequential (reduction order is semantic), so Amdahl caps this
//            series; it mainly demonstrates that parallel lattice stages
//            pay their way and stay byte-deterministic.
//   batch  — AnalysisSession::analyzeBatch schedules whole copies of the
//            file across the same pool (the paper family is multi-module;
//            multi-file throughput is the production shape). This is the
//            near-linear series.
//
// Every configuration's report is checked identical to the sequential one
// (the determinism guarantee); a mismatch fails the bench.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyzer/AnalysisSession.h"
#include "support/Timer.h"

#include <string>
#include <thread>
#include <vector>

using namespace astral;
using namespace astral::benchutil;

namespace {

/// Report fingerprint for the determinism check.
std::string fingerprint(const AnalysisResult &R) {
  std::string F = std::to_string(R.alarmCount());
  for (const Alarm &A : R.Alarms)
    F += "|" + std::to_string(A.Loc.Line) + ":" + A.Message;
  for (const auto &[Name, Itv] : R.VariableRanges)
    F += "|" + Name + "=" + Itv.toString();
  F += "|" + R.MainLoopInvariant;
  return F;
}

} // namespace

int main() {
  unsigned Lines = fullRuns() ? 16000 : 4000;
  unsigned Copies = 8;
  unsigned Cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel speedup vs jobs — family member of ~%u lines, "
              "batch of %u copies\n",
              Lines, Copies);
  std::printf("PARALLEL hardware cores=%u\n", Cores);
  if (Cores == 1)
    std::puts("note: single hardware thread — speedups are bounded by 1.0 "
              "here; the series only checks overhead and determinism.");
  hr();

  codegen::GeneratorConfig C;
  C.TargetLines = Lines;
  C.Seed = 1234;
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);

  const unsigned JobsSeries[] = {1, 2, 4, 8};

  // -- single-file: per-slot lattice parallelism --------------------------
  std::string SeqPrint;
  double SeqSingle = 0.0;
  for (unsigned Jobs : JobsSeries) {
    AnalysisInput In = familyInput(FP);
    In.Options.Jobs = Jobs;
    Timer T;
    AnalysisResult R = Analyzer::analyze(In);
    double Sec = T.seconds();
    if (!R.FrontendOk) {
      std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
      return 1;
    }
    std::string Print = fingerprint(R);
    if (Jobs == 1) {
      SeqPrint = Print;
      SeqSingle = Sec;
    } else if (Print != SeqPrint) {
      std::printf("DETERMINISM VIOLATION: single jobs=%u report differs\n",
                  Jobs);
      return 1;
    }
    std::printf("PARALLEL single jobs=%u seconds=%.3f speedup=%.2f "
                "alarms=%zu\n",
                Jobs, Sec, SeqSingle / Sec, R.alarmCount());
  }
  hr();

  // -- batch: whole files across the pool ---------------------------------
  double SeqBatch = 0.0;
  for (unsigned Jobs : JobsSeries) {
    std::vector<AnalysisInput> Inputs;
    for (unsigned I = 0; I < Copies; ++I) {
      AnalysisInput In = familyInput(FP);
      In.Options.Jobs = Jobs;
      In.FileName = "member" + std::to_string(I) + ".c";
      Inputs.push_back(std::move(In));
    }
    Timer T;
    std::vector<AnalysisResult> Results =
        AnalysisSession::analyzeBatch(Inputs);
    double Sec = T.seconds();
    for (const AnalysisResult &R : Results)
      if (fingerprint(R) != SeqPrint) {
        std::printf("DETERMINISM VIOLATION: batch jobs=%u report differs\n",
                    Jobs);
        return 1;
      }
    if (Jobs == 1)
      SeqBatch = Sec;
    std::printf("PARALLEL batch jobs=%u files=%u seconds=%.3f speedup=%.2f\n",
                Jobs, Copies, Sec, SeqBatch / Sec);
  }
  hr();
  std::puts("expected shape: batch speedup grows toward the worker count "
            "(whole-file dispatch);");
  std::puts("single-file speedup is modest (lattice slots only — the "
            "reduction chains are sequential by design).");
  return 0;
}
