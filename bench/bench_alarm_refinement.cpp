//===- bench/bench_alarm_refinement.cpp - Sect. 8 alarm reduction -------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E2 (DESIGN.md): the headline result of Sect. 8 — "we had 1,200
// false alarms with the analyzer [5] we started with. The refinements of
// the analyzer described in this paper reduce the number of alarms down to
// 11 (and even 3)". We stack the refinements in the paper's order and print
// the alarm count after each step; the shape to reproduce is a monotone
// collapse by orders of magnitude, ending at (near) zero.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace astral;
using namespace astral::benchutil;

int main() {
  std::puts("E2 — alarms along the refinement sequence (Sect. 8)");
  std::puts("paper: 1,200 alarms with the starting analyzer [5]; 11 after "
            "refinement");
  std::puts("(down to 3 on some program versions).");
  hr();

  codegen::GeneratorConfig C;
  C.TargetLines = fullRuns() ? 8000 : 2500;
  C.Seed = 42;
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);

  struct Step {
    const char *Name;
    std::function<void(AnalyzerOptions &)> Config;
  };
  // The paper's refinement order: [5] = intervals + widening thresholds;
  // then the domains this paper adds (Sect. 6.3, 6.2.2-6.2.4, 7.1.5).
  const Step Steps[] = {
      {"intervals+thresholds ([5] baseline)",
       [](AnalyzerOptions &O) { baselineConfig(O); }},
      {"+ clocked domain (6.2.1)",
       [](AnalyzerOptions &O) {
         baselineConfig(O);
         O.Domains.enable(DomainKind::Clocked);
       }},
      {"+ linearization (6.3)",
       [](AnalyzerOptions &O) {
         baselineConfig(O);
         O.Domains.enable(DomainKind::Clocked);
         O.EnableLinearization = true;
       }},
      {"+ octagons (6.2.2)",
       [](AnalyzerOptions &O) {
         baselineConfig(O);
         O.Domains.enable(DomainKind::Clocked);
         O.EnableLinearization = true;
         O.Domains.enable(DomainKind::Octagon);
       }},
      {"+ ellipsoids (6.2.3)",
       [](AnalyzerOptions &O) {
         baselineConfig(O);
         O.Domains.enable(DomainKind::Clocked);
         O.EnableLinearization = true;
         O.Domains.enable(DomainKind::Octagon);
         O.Domains.enable(DomainKind::Ellipsoid);
       }},
      {"+ decision trees (6.2.4)",
       [](AnalyzerOptions &O) {
         // Everything on except trace partitioning.
         O.PartitionFunctions.clear();
       }},
      {"+ trace partitioning (7.1.5) [full]", nullptr},
  };

  std::printf("  %-42s %8s %10s\n", "configuration", "alarms", "time(s)");
  size_t BaselineAlarms = 0, FullAlarms = 0;
  bool First = true;
  size_t Prev = 0;
  bool Monotone = true;
  for (const Step &S : Steps) {
    AnalysisResult R = analyzeFamily(FP, S.Config);
    if (!R.FrontendOk) {
      std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
      return 1;
    }
    std::printf("  %-42s %8zu %10.2f\n", S.Name, R.alarmCount(),
                R.AnalysisSeconds);
    if (First)
      BaselineAlarms = R.alarmCount();
    else if (R.alarmCount() > Prev)
      Monotone = false;
    Prev = R.alarmCount();
    FullAlarms = R.alarmCount();
    First = false;
  }
  hr();
  std::printf("baseline -> full: %zu -> %zu alarms (paper: 1,200 -> 11/3)\n",
              BaselineAlarms, FullAlarms);
  std::printf("monotone decrease along refinements: %s\n",
              Monotone ? "yes" : "NO (unexpected)");
  if (FullAlarms)
    std::printf("reduction factor: %.0fx (paper: ~110x-400x)\n",
                static_cast<double>(BaselineAlarms) /
                    static_cast<double>(FullAlarms));
  else
    std::puts("reduction factor: full precision (0 residual alarms)");
  return 0;
}
