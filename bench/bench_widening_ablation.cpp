//===- bench/bench_widening_ablation.cpp - Sect. 7.1 widening strategies -------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E6 (DESIGN.md): ablation of the iteration strategies:
//   - widening with thresholds (7.1.2) recovers the integrator bound
//     M = max|beta| / (1 - alpha);
//   - delayed widening (7.1.3) keeps the X := Y + g; Y := aX + h cascade
//     from over-shooting to a much larger threshold;
//   - the floating iteration perturbation (7.1.4) guards termination.
// We analyze the integrator/cascade idioms under each strategy and report
// alarms, inferred bounds and iteration counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace astral;
using namespace astral::benchutil;

namespace {
const char *IntegratorSrc =
    "volatile float err;\nfloat integ; float out;\n"
    "int main(void) {\n"
    "  while (1) {\n"
    "    integ = 0.9f * integ + err;\n"
    "    out = integ * 2.0f;\n"
    "    __astral_wait();\n"
    "  }\n"
    "  return 0;\n"
    "}";

const char *CascadeSrc =
    "volatile float g; volatile float h;\nfloat X; float Y;\n"
    "int main(void) {\n"
    "  while (1) {\n"
    "    X = Y + g;\n"
    "    Y = 0.5f * X + h;\n"
    "    __astral_wait();\n"
    "  }\n"
    "  return 0;\n"
    "}";

double boundOf(const AnalysisResult &R, const char *Name) {
  for (const auto &[N, I] : R.VariableRanges)
    if (N == Name)
      return I.magnitude();
  return -1.0;
}

AnalysisResult run(const char *Src,
                   const std::function<void(AnalyzerOptions &)> &Tweak) {
  AnalysisInput In;
  In.Source = Src;
  In.Options.VolatileRanges["err"] = Interval(-10, 10);
  In.Options.VolatileRanges["g"] = Interval(-1, 1);
  In.Options.VolatileRanges["h"] = Interval(-1, 1);
  In.Options.ClockMax = 1e6;
  if (Tweak)
    Tweak(In.Options);
  return Analyzer::analyze(In);
}
} // namespace

int main() {
  std::puts("E6 — widening strategy ablation (Sect. 7.1.2/7.1.3/7.1.4)");
  std::puts("integrator: x' = 0.9x + [-10,10]  (true bound 100; paper: any "
            "threshold >= M");
  std::puts("proves it). cascade: X = Y + g; Y = 0.5X + h (true bounds "
            "|Y|<=3, |X|<=4;");
  std::puts("paper 7.1.3: plain per-step widening chases the pair upward).");
  hr();

  struct Row {
    const char *Name;
    std::function<void(AnalyzerOptions &)> Config;
  };
  const Row Rows[] = {
      {"plain widening (no thresholds)",
       [](AnalyzerOptions &O) {
         O.WideningWithThresholds = false;
         O.DelayedWidening = false;
       }},
      {"thresholds only",
       [](AnalyzerOptions &O) { O.DelayedWidening = false; }},
      {"thresholds + delayed widening", nullptr},
  };

  std::puts("integrator idiom:");
  std::printf("  %-34s %8s %14s %12s\n", "strategy", "alarms", "|integ| bound",
              "iterations");
  for (const Row &RowCfg : Rows) {
    AnalysisResult R = run(IntegratorSrc, RowCfg.Config);
    std::printf("  %-34s %8zu %14.4g %12llu\n", RowCfg.Name, R.alarmCount(),
                boundOf(R, "integ"),
                static_cast<unsigned long long>(
                    R.Stats.get("fixpoint.iterations")));
  }

  std::puts("cascade idiom (7.1.3):");
  std::printf("  %-34s %8s %14s %12s\n", "strategy", "alarms", "|Y| bound",
              "iterations");
  for (const Row &RowCfg : Rows) {
    AnalysisResult R = run(CascadeSrc, RowCfg.Config);
    std::printf("  %-34s %8zu %14.4g %12llu\n", RowCfg.Name, R.alarmCount(),
                boundOf(R, "Y"),
                static_cast<unsigned long long>(
                    R.Stats.get("fixpoint.iterations")));
  }
  hr();
  std::puts("expected shape: plain widening alarms (bound = float max); "
            "thresholds prove");
  std::puts("boundedness; delayed widening gives the same-or-tighter bound "
            "on the cascade.");
  return 0;
}
