//===- bench/bench_octagon_cost.cpp - Sect. 6.2.2 octagon cost model -----------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E7 (DESIGN.md): Sect. 6.2.2 — octagon operations are "cubic in
// time and quadratic in space (w.r.t. the number of variables)", which is
// why the analyzer partitions variables into many small packs ("a linear
// number of constant-sized octagons, effectively resulting in a cost linear
// in the size of the program", 7.2.1). We measure closure cost against pack
// size (expect ~k^3 growth for the full sweep, ~k^2 for the incremental
// closure of a single dirty variable) and total cost against the number of
// packs at fixed size (expect linear growth).
//
// The plain-text OCTCLOSE section at the end runs the fig2 scaling members
// through the whole analyzer under both closure disciplines
// (--octagon-closure=full vs incremental) and prints machine-readable rows
// that scripts/bench_domains.sh folds into BENCH_octagon.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "domains/Octagon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace astral;
using namespace astral::benchutil;

namespace {
std::shared_ptr<OctagonClosureStats> benchStats() {
  static auto Stats = std::make_shared<OctagonClosureStats>();
  return Stats;
}

Octagon makeChainOctagon(int K, OctClosureMode Mode) {
  std::vector<CellId> Cells;
  for (int I = 0; I < K; ++I)
    Cells.push_back(static_cast<CellId>(I));
  Octagon O(Cells, Mode, benchStats());
  auto Top = [](CellId) { return Interval::top(); };
  for (int I = 0; I + 1 < K; ++I) {
    LinearForm F = LinearForm::var(static_cast<CellId>(I))
                       .sub(LinearForm::var(static_cast<CellId>(I + 1)))
                       .add(LinearForm::constant(Interval::point(-1.0)));
    O.guardLe(F, Top);
  }
  O.meetVarInterval(0, Interval(0, 1));
  return O;
}

// One closure of a chain octagon whose last mutation dirtied a single
// variable — the shape of the post-transfer closure on the hot path. The
// full sweep re-runs Floyd-Warshall (~K^3); the incremental discipline
// propagates through the dirty rows/columns only (~K^2).
void benchClosureBySize(benchmark::State &State, OctClosureMode Mode) {
  int K = static_cast<int>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Octagon O = makeChainOctagon(K, Mode);
    State.ResumeTiming();
    O.close();
    benchmark::DoNotOptimize(O.isBottom());
  }
  State.SetComplexityN(K);
}

void benchClosureBySizeFull(benchmark::State &State) {
  benchClosureBySize(State, OctClosureMode::Full);
}

void benchClosureBySizeIncremental(benchmark::State &State) {
  benchClosureBySize(State, OctClosureMode::Incremental);
}

void benchManySmallPacks(benchmark::State &State) {
  int Packs = static_cast<int>(State.range(0));
  constexpr int PackSize = 4; // The paper's average pack size.
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<Octagon> Os;
    Os.reserve(Packs);
    for (int P = 0; P < Packs; ++P)
      Os.push_back(makeChainOctagon(PackSize, OctClosureMode::Incremental));
    State.ResumeTiming();
    for (Octagon &O : Os)
      O.close();
    benchmark::DoNotOptimize(Os.size());
  }
  State.SetComplexityN(Packs);
}

void benchJoinBySize(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  Octagon A = makeChainOctagon(K, OctClosureMode::Incremental);
  A.close();
  Octagon B = makeChainOctagon(K, OctClosureMode::Incremental);
  B.meetVarInterval(0, Interval(5, 9));
  B.close();
  for (auto _ : State) {
    Octagon J(A);
    J.joinWith(B);
    benchmark::DoNotOptimize(J.isBottom());
  }
}

// indexOf runs once per transfer per pack; compare the sorted flat lookup
// against the linear scan it replaced.
void benchIndexOfFlat(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  // Non-contiguous cell ids, as produced by real packings.
  std::vector<CellId> Cells;
  for (int I = 0; I < K; ++I)
    Cells.push_back(static_cast<CellId>(7 * I + 3));
  Octagon O(Cells, OctClosureMode::Incremental, nullptr);
  for (auto _ : State) {
    int Acc = 0;
    for (CellId C = 0; C < static_cast<CellId>(7 * K + 4); ++C)
      Acc += O.indexOf(C);
    benchmark::DoNotOptimize(Acc);
  }
}

void benchIndexOfLinearReference(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  std::vector<CellId> Cells;
  for (int I = 0; I < K; ++I)
    Cells.push_back(static_cast<CellId>(7 * I + 3));
  auto LinearIndexOf = [&Cells](CellId C) -> int {
    for (size_t I = 0; I < Cells.size(); ++I)
      if (Cells[I] == C)
        return static_cast<int>(I);
    return -1;
  };
  for (auto _ : State) {
    int Acc = 0;
    for (CellId C = 0; C < static_cast<CellId>(7 * K + 4); ++C)
      Acc += LinearIndexOf(C);
    benchmark::DoNotOptimize(Acc);
  }
}

BENCHMARK(benchClosureBySizeFull)
    ->DenseRange(2, 16, 2)
    ->MinTime(0.05)
    ->Complexity(benchmark::oNCubed);
BENCHMARK(benchClosureBySizeIncremental)
    ->DenseRange(2, 16, 2)
    ->MinTime(0.05)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(benchManySmallPacks)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity(benchmark::oN);
BENCHMARK(benchJoinBySize)->DenseRange(2, 16, 2);
BENCHMARK(benchIndexOfFlat)->DenseRange(4, 16, 4);
BENCHMARK(benchIndexOfLinearReference)->DenseRange(4, 16, 4);

/// Whole-analyzer differential: the fig2 scaling members under both closure
/// disciplines. Rows are machine-readable for scripts/bench_domains.sh:
///   OCTCLOSE lines=N kloc=K mode=full|incremental seconds=S s_per_kloc=P
///            closures_full=A closures_incremental=B alarms=C
int runFig2ClosureComparison() {
  std::puts("OCTCLOSE — closure discipline on the fig2 scaling members");
  std::puts("(full = Floyd-Warshall sweep after every transfer; incremental "
            "= dirty-row/");
  std::puts("column propagation; reports are byte-identical, only the work "
            "changes)");
  std::vector<unsigned> Lines = {1000, 2000, 4000, 8000};
  if (fullRuns()) {
    Lines.push_back(16000);
    Lines.push_back(32000);
  }
  for (unsigned L : Lines) {
    codegen::GeneratorConfig C;
    C.TargetLines = L;
    C.Seed = 1234;
    codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);
    for (OctClosureMode Mode :
         {OctClosureMode::Full, OctClosureMode::Incremental}) {
      AnalysisResult R = analyzeFamily(
          FP, [Mode](AnalyzerOptions &O) { O.OctagonClosure = Mode; });
      if (!R.FrontendOk) {
        std::printf("  frontend failed: %s\n", R.FrontendErrors.c_str());
        return 1;
      }
      double KLoc = FP.LineCount / 1000.0;
      std::printf("OCTCLOSE lines=%u kloc=%.1f mode=%s seconds=%.3f "
                  "s_per_kloc=%.4f closures_full=%llu "
                  "closures_incremental=%llu alarms=%zu\n",
                  FP.LineCount, KLoc,
                  Mode == OctClosureMode::Full ? "full" : "incremental",
                  R.AnalysisSeconds, R.AnalysisSeconds / KLoc,
                  static_cast<unsigned long long>(
                      R.Stats.get("analysis.octagon_closures_full")),
                  static_cast<unsigned long long>(
                      R.Stats.get("analysis.octagon_closures_incremental")),
                  R.alarmCount());
    }
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::puts("E7 — octagon cost model (Sect. 6.2.2 / 7.2.1)");
  std::puts("paper: octagon ops are cubic in pack size; many constant-size "
            "packs give a");
  std::puts("total cost linear in program size (2,600 packs of ~4 vars on "
            "75 kLOC).");
  std::puts("expected: ClosureBySizeFull fits ~N^3, "
            "ClosureBySizeIncremental ~N^2; ManySmallPacks fits ~N.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("micro-bench closures performed: full=%llu incremental=%llu\n",
              static_cast<unsigned long long>(benchStats()->full()),
              static_cast<unsigned long long>(benchStats()->incremental()));
  hr();
  // The whole-analyzer sweep is the expensive part; ASTRAL_BENCH_OCTCLOSE=0
  // skips it so the nightly workflow's run-everything pass does not repeat
  // the work bench_domains.sh redoes for BENCH_octagon.json.
  const char *Gate = std::getenv("ASTRAL_BENCH_OCTCLOSE");
  if (Gate && Gate[0] == '0') {
    std::puts("OCTCLOSE skipped (ASTRAL_BENCH_OCTCLOSE=0)");
    return 0;
  }
  return runFig2ClosureComparison();
}
