//===- bench/bench_octagon_cost.cpp - Sect. 6.2.2 octagon cost model -----------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E7 (DESIGN.md): Sect. 6.2.2 — octagon operations are "cubic in
// time and quadratic in space (w.r.t. the number of variables)", which is
// why the analyzer partitions variables into many small packs ("a linear
// number of constant-sized octagons, effectively resulting in a cost linear
// in the size of the program", 7.2.1). We measure closure cost against pack
// size (expect ~k^3 growth) and total cost against the number of packs at
// fixed size (expect linear growth).
//
//===----------------------------------------------------------------------===//

#include "domains/Octagon.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace astral;

namespace {
Octagon makeChainOctagon(int K) {
  std::vector<CellId> Cells;
  for (int I = 0; I < K; ++I)
    Cells.push_back(static_cast<CellId>(I));
  Octagon O(Cells);
  auto Top = [](CellId) { return Interval::top(); };
  for (int I = 0; I + 1 < K; ++I) {
    LinearForm F = LinearForm::var(static_cast<CellId>(I))
                       .sub(LinearForm::var(static_cast<CellId>(I + 1)))
                       .add(LinearForm::constant(Interval::point(-1.0)));
    O.guardLe(F, Top);
  }
  O.meetVarInterval(0, Interval(0, 1));
  return O;
}

void benchClosureBySize(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    Octagon O = makeChainOctagon(K);
    State.ResumeTiming();
    O.close();
    benchmark::DoNotOptimize(O.isBottom());
  }
  State.SetComplexityN(K);
}

void benchManySmallPacks(benchmark::State &State) {
  int Packs = static_cast<int>(State.range(0));
  constexpr int PackSize = 4; // The paper's average pack size.
  for (auto _ : State) {
    State.PauseTiming();
    std::vector<Octagon> Os;
    Os.reserve(Packs);
    for (int P = 0; P < Packs; ++P)
      Os.push_back(makeChainOctagon(PackSize));
    State.ResumeTiming();
    for (Octagon &O : Os)
      O.close();
    benchmark::DoNotOptimize(Os.size());
  }
  State.SetComplexityN(Packs);
}

void benchJoinBySize(benchmark::State &State) {
  int K = static_cast<int>(State.range(0));
  Octagon A = makeChainOctagon(K);
  A.close();
  Octagon B = makeChainOctagon(K);
  B.meetVarInterval(0, Interval(5, 9));
  B.close();
  for (auto _ : State) {
    Octagon J(A);
    J.joinWith(B);
    benchmark::DoNotOptimize(J.isBottom());
  }
}

BENCHMARK(benchClosureBySize)
    ->DenseRange(2, 16, 2)
    ->MinTime(0.05)
    ->Complexity(benchmark::oNCubed);
BENCHMARK(benchManySmallPacks)->RangeMultiplier(4)->Range(16, 1024)
    ->Complexity(benchmark::oN);
BENCHMARK(benchJoinBySize)->DenseRange(2, 16, 2);
} // namespace

int main(int argc, char **argv) {
  std::puts("E7 — octagon cost model (Sect. 6.2.2 / 7.2.1)");
  std::puts("paper: octagon ops are cubic in pack size; many constant-size "
            "packs give a");
  std::puts("total cost linear in program size (2,600 packs of ~4 vars on "
            "75 kLOC).");
  std::puts("expected: ClosureBySize fits ~N^3; ManySmallPacks fits ~N.");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("total closures performed: %llu\n",
              static_cast<unsigned long long>(Octagon::closureCount()));
  return 0;
}
