//===- bench/bench_packing_opt.cpp - Sect. 7.2.2 packing optimization ----------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E3 (DESIGN.md): Sect. 7.2.1/7.2.2 + Sect. 8 — "on a program of
// 75 kLOC, 2,600 octagons were detected, each containing four variables on
// average ... only 400 out of the 2,600 original octagons were in fact
// useful", and reusing the useful-pack list "reduces memory consumption
// from 550 Mb to 150 Mb and time from 1h40 to 40min". We analyze a family
// member twice — all syntactic packs, then useful-only — and report the
// pack counts, time and abstract-state memory. Shape: useful packs are a
// small fraction; time and memory drop; precision is unchanged.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <set>

using namespace astral;
using namespace astral::benchutil;

int main() {
  std::puts("E3 — octagon packing optimization (Sect. 7.2.2)");
  std::puts("paper: 2,600 packs detected / 400 useful (75 kLOC); reuse of "
            "the useful list:");
  std::puts("memory 550 Mb -> 150 Mb, time 1h40 -> 40min; average pack size "
            "~4 variables.");
  hr();

  codegen::GeneratorConfig C;
  C.TargetLines = fullRuns() ? 16000 : 4000;
  C.Seed = 7;
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);

  // Night run: full analysis with every syntactic pack (7.2.2: "generate at
  // night an up-to-date list of good octagons by a full, lengthy analysis").
  AnalysisResult Full = analyzeFamily(FP);
  if (!Full.FrontendOk) {
    std::printf("frontend failed: %s\n", Full.FrontendErrors.c_str());
    return 1;
  }

  // Day run: restricted to the packs the night run proved useful.
  std::set<uint32_t> Useful(Full.UsefulOctPacks.begin(),
                            Full.UsefulOctPacks.end());
  AnalysisResult Opt = analyzeFamily(FP, [&](AnalyzerOptions &O) {
    O.UseRestrictedPacks = true;
    O.RestrictOctPacks = Useful;
  });

  std::printf("  %-28s %12s %12s\n", "", "all packs", "useful only");
  std::printf("  %-28s %12llu %12llu\n", "octagon packs",
              static_cast<unsigned long long>(Full.packCount(DomainKind::Octagon)),
              static_cast<unsigned long long>(Opt.packCount(DomainKind::Octagon)));
  std::printf("  %-28s %12.1f %12s\n", "avg pack size (vars)",
              Full.avgPackCells(DomainKind::Octagon), "-");
  std::printf("  %-28s %12zu %12zu\n", "useful packs",
              Full.UsefulOctPacks.size(), Opt.UsefulOctPacks.size());
  std::printf("  %-28s %12.2f %12.2f\n", "analysis time (s)",
              Full.AnalysisSeconds, Opt.AnalysisSeconds);
  std::printf("  %-28s %12.1f %12.1f\n", "abstract-state peak (MB)",
              Full.PeakAbstractBytes / 1048576.0,
              Opt.PeakAbstractBytes / 1048576.0);
  std::printf("  %-28s %12zu %12zu\n", "alarms", Full.alarmCount(),
              Opt.alarmCount());
  hr();
  double Frac = Full.packCount(DomainKind::Octagon)
                    ? 100.0 * static_cast<double>(Full.UsefulOctPacks.size()) /
                          static_cast<double>(Full.packCount(DomainKind::Octagon))
                    : 0.0;
  std::printf("useful fraction: %.0f%% (paper: 400/2600 = 15%%)\n", Frac);
  std::printf("speedup: %.2fx (paper: 2.5x)   precision unchanged: %s\n",
              Opt.AnalysisSeconds > 0
                  ? Full.AnalysisSeconds / Opt.AnalysisSeconds
                  : 0.0,
              Full.alarmCount() == Opt.alarmCount() ? "yes" : "NO");
  return 0;
}
