//===- bench/bench_partitioning.cpp - Sect. 7.1.1/7.1.5 ablation ---------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E8 (DESIGN.md): trace partitioning (7.1.5) delays the merge of
// test branches inside selected functions, keeping mode/value correlations;
// loop unrolling (7.1.1) analyzes the first iteration(s) separately. We
// sweep both knobs over the correlated-branch family idiom and report
// alarms and cost. Shape: partitioning removes the correlation alarms at
// moderate cost; unrolling sharpens first-iteration facts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace astral;
using namespace astral::benchutil;

namespace {
std::string selectorProgram(int Copies) {
  std::string Decls, Funcs, Loop;
  for (int K = 0; K < Copies; ++K) {
    std::string Id = std::to_string(K);
    Decls += "volatile int mode" + Id + "; volatile float sig" + Id +
             ";\nfloat out" + Id + ";\n";
    Funcs += "void select" + Id + "(void) {\n"
             "  float scale; float denom;\n"
             "  if (mode" + Id + " == 1) { scale = 0.5f; } else {\n"
             "    if (mode" + Id + " == 2) { scale = 2.0f; } else { scale = "
             "1.0f; } }\n"
             "  if (mode" + Id + " == 1) { denom = scale - 2.0f; } else { "
             "denom = scale + 1.0f; }\n"
             "  out" + Id + " = sig" + Id + " / denom;\n"
             "}\n";
    Loop += "    select" + Id + "();\n";
  }
  return Decls + Funcs + "int main(void) {\n  while (1) {\n" + Loop +
         "    __astral_wait();\n  }\n  return 0;\n}\n";
}
} // namespace

int main() {
  std::puts("E8 — trace partitioning & loop unrolling ablation "
            "(Sect. 7.1.1 / 7.1.5)");
  std::puts("paper: partitioning selected functions was needed for "
            "correlated branches");
  std::puts("(a[i]/b[i] couples); merging paths \"inevitably leads to many "
            "false alarms\".");
  hr();

  int Copies = fullRuns() ? 24 : 8;
  std::string Src = selectorProgram(Copies);

  struct Row {
    const char *Name;
    bool Partition;
    unsigned Unroll;
  };
  const Row Rows[] = {
      {"merged (no partitioning), unroll 0", false, 0},
      {"merged (no partitioning), unroll 1", false, 1},
      {"partitioned, unroll 0", true, 0},
      {"partitioned, unroll 1", true, 1},
      {"partitioned, unroll 2", true, 2},
  };

  std::printf("  %-38s %8s %10s %12s\n", "configuration", "alarms", "time(s)",
              "partitions");
  for (const Row &RowCfg : Rows) {
    AnalysisInput In;
    In.Source = Src;
    for (int K = 0; K < Copies; ++K) {
      In.Options.VolatileRanges["mode" + std::to_string(K)] = Interval(0, 3);
      In.Options.VolatileRanges["sig" + std::to_string(K)] =
          Interval(-50, 50);
      if (RowCfg.Partition)
        In.Options.PartitionFunctions.insert("select" + std::to_string(K));
    }
    In.Options.DefaultUnroll = RowCfg.Unroll;
    In.Options.ClockMax = 1e6;
    AnalysisResult R = Analyzer::analyze(In);
    if (!R.FrontendOk) {
      std::printf("frontend failed: %s\n", R.FrontendErrors.c_str());
      return 1;
    }
    std::printf("  %-38s %8zu %10.2f %12llu\n", RowCfg.Name, R.alarmCount(),
                R.AnalysisSeconds,
                static_cast<unsigned long long>(
                    R.Stats.get("partitioning.delayed_merges")));
  }
  hr();
  std::printf("%d selector modules; expected: %d division alarms merged, 0 "
              "partitioned\n",
              Copies, Copies);
  std::puts("(the paper's who-wins: partitioning eliminates exactly the "
            "correlation alarms).");
  return 0;
}
