//===- bench/bench_invariant_census.cpp - Sect. 9.4.1 invariant census ---------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E4 (DESIGN.md): Sect. 9.4.1 dumps the main loop invariant
// (4.5 Mb of text) and counts its assertions: 6,900 boolean, 9,600
// interval, 25,400 clock, 19,100 additive octagonal, 19,200 subtractive
// octagonal, 100 decision trees, 1,900 ellipsoidal; over 16,000 distinct
// floating-point constants. We census the main loop invariant of a family
// member; the reproduction target is the *ordering* — interval/clock/
// octagon assertions dominate, decision trees and ellipsoids are rare —
// and proportionality with program size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace astral;
using namespace astral::benchutil;

int main() {
  std::puts("E4 — main loop invariant census (Sect. 9.4.1)");
  std::puts("paper (75 kLOC program): 6,900 boolean / 9,600 interval / "
            "25,400 clock /");
  std::puts("19,100 additive + 19,200 subtractive octagonal / 100 decision "
            "trees / 1,900");
  std::puts("ellipsoidal assertions; >16,000 fp constants; 4.5 Mb dump.");
  hr();

  codegen::GeneratorConfig C;
  C.TargetLines = fullRuns() ? 16000 : 4000;
  C.Seed = 99;
  codegen::FamilyProgram FP = codegen::generateFamilyProgram(C);
  AnalysisResult R = analyzeFamily(FP);
  if (!R.FrontendOk || !R.HasMainLoop) {
    std::printf("analysis failed: %s\n", R.FrontendErrors.c_str());
    return 1;
  }

  const InvariantCensus &Cs = R.MainLoopCensus;
  std::printf("measured on %u lines (%llu cells):\n", FP.LineCount,
              static_cast<unsigned long long>(R.NumCells));
  std::printf("  %-34s %10llu\n", "boolean interval assertions",
              static_cast<unsigned long long>(Cs.BoolAssertions));
  std::printf("  %-34s %10llu\n", "interval assertions",
              static_cast<unsigned long long>(Cs.IntervalAssertions));
  std::printf("  %-34s %10llu\n", "clock assertions",
              static_cast<unsigned long long>(Cs.ClockAssertions));
  std::printf("  %-34s %10llu\n", "additive octagonal assertions",
              static_cast<unsigned long long>(Cs.OctAdditive));
  std::printf("  %-34s %10llu\n", "subtractive octagonal assertions",
              static_cast<unsigned long long>(Cs.OctSubtractive));
  std::printf("  %-34s %10llu\n", "decision trees",
              static_cast<unsigned long long>(Cs.DecisionTrees));
  std::printf("  %-34s %10llu\n", "ellipsoidal assertions",
              static_cast<unsigned long long>(Cs.EllipsoidAssertions));
  std::printf("  %-34s %10llu\n", "distinct constants",
              static_cast<unsigned long long>(Cs.DistinctConstants));
  std::printf("  %-34s %10.2f\n", "invariant dump (MB)",
              Cs.DumpBytes / 1048576.0);
  hr();
  bool Ordering = Cs.IntervalAssertions + Cs.ClockAssertions >
                      Cs.DecisionTrees + Cs.EllipsoidAssertions &&
                  Cs.DecisionTrees < Cs.IntervalAssertions;
  std::printf("paper ordering (interval/clock >> trees & ellipsoids): %s\n",
              Ordering ? "reproduced" : "NOT reproduced");
  std::puts("note: the paper's absolute counts scale with its 21,000 cells; "
            "per-cell density");
  std::puts("is the comparable quantity.");
  return 0;
}
