//===- bench/BenchUtil.h - Shared experiment harness helpers -----*- C++ -*-===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment harnesses (DESIGN.md E1-E8). Each bench
/// binary regenerates one paper artifact and prints paper-vs-measured rows;
/// absolute numbers differ from the 2003 testbed, the *shape* is what must
/// reproduce (see EXPERIMENTS.md).
///
/// Set ASTRAL_BENCH_FULL=1 for the full-size sweeps (several minutes).
///
//===----------------------------------------------------------------------===//

#ifndef ASTRAL_BENCH_BENCHUTIL_H
#define ASTRAL_BENCH_BENCHUTIL_H

#include "analyzer/Analyzer.h"
#include "codegen/FamilyGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

namespace astral {
namespace benchutil {

inline bool fullRuns() {
  const char *V = std::getenv("ASTRAL_BENCH_FULL");
  return V && V[0] == '1';
}

/// Builds the AnalysisInput for a family program with its environment
/// specification (volatile ranges, partitioned functions, documented
/// thresholds) — the end-user parametrization of Sect. 3.2.
inline AnalysisInput
familyInput(const codegen::FamilyProgram &FP,
            const std::function<void(AnalyzerOptions &)> &Tweak = nullptr) {
  AnalysisInput In;
  In.Source = FP.Source;
  In.Options.VolatileRanges = FP.VolatileRanges;
  In.Options.PartitionFunctions = FP.PartitionFunctions;
  for (double T : FP.DocumentedThresholds)
    In.Options.ExtraThresholds.push_back(T);
  In.Options.ClockMax = 1.0e6;
  if (Tweak)
    Tweak(In.Options);
  return In;
}

inline AnalysisResult
analyzeFamily(const codegen::FamilyProgram &FP,
              const std::function<void(AnalyzerOptions &)> &Tweak = nullptr) {
  return Analyzer::analyze(familyInput(FP, Tweak));
}

/// Disables every refinement this paper added over the starting-point
/// analyzer [5] (interval baseline).
inline void baselineConfig(AnalyzerOptions &O) {
  O.Domains = DomainSet::intervalOnly();
  O.EnableLinearization = false;
  O.PartitionFunctions.clear();
}

inline void hr() {
  std::puts("-----------------------------------------------------------------"
            "-----------");
}

} // namespace benchutil
} // namespace astral

#endif // ASTRAL_BENCH_BENCHUTIL_H
