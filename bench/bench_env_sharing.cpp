//===- bench/bench_env_sharing.cpp - Sect. 6.1.2 functional maps ---------------===//
//
// Part of ASTRAL, a reproduction of "A Static Analyzer for Large
// Safety-Critical Software" (PLDI 2003).
//
// Experiment E5 (DESIGN.md): Sect. 6.1.2 — naive array environments make
// abstract union cost linear in the number of cells, and since both cells
// and tests grow linearly with code size the analysis goes quadratic; the
// sharable-tree maps with physical-equality short-cuts make the union cost
// proportional to the number of *differing* cells ("on a 10,000-line
// example ... the execution time was divided by seven"). We benchmark the
// branch-join workload (big environment, few modified cells) under both
// representations with google-benchmark, then print the summary ratio.
//
//===----------------------------------------------------------------------===//

#include "support/PersistentMap.h"

#include "domains/Interval.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <vector>

using namespace astral;

namespace {
constexpr uint32_t EnvCells = 10000;
constexpr uint32_t TouchedCells = 12; // "branches of tests modify a few
                                      // abstract cells only".

PersistentMap<Interval> makeSharedEnv() {
  PersistentMap<Interval> M;
  for (uint32_t C = 0; C < EnvCells; ++C)
    M = M.set(C, Interval(0, static_cast<double>(C)));
  return M;
}

std::vector<Interval> makeArrayEnv() {
  std::vector<Interval> V;
  V.reserve(EnvCells);
  for (uint32_t C = 0; C < EnvCells; ++C)
    V.push_back(Interval(0, static_cast<double>(C)));
  return V;
}

void branchTouch(PersistentMap<Interval> &Env, uint32_t SeedOffset) {
  for (uint32_t I = 0; I < TouchedCells; ++I) {
    uint32_t C = (SeedOffset + I * 97) % EnvCells;
    Env = Env.set(C, Interval(-1.0, static_cast<double>(I)));
  }
}

void benchSharedTreeJoin(benchmark::State &State) {
  PersistentMap<Interval> Base = makeSharedEnv();
  for (auto _ : State) {
    // The two branches of a test start from the same environment and touch
    // a few cells each; the join must only visit the differing subtrees.
    PersistentMap<Interval> Then = Base, Else = Base;
    branchTouch(Then, 3);
    branchTouch(Else, 5000);
    PersistentMap<Interval> Joined = PersistentMap<Interval>::combine(
        Then, Else,
        [](uint32_t, const Interval *A,
           const Interval *B) -> std::optional<Interval> {
          if (!A)
            return *B;
          if (!B)
            return *A;
          return A->join(*B);
        });
    benchmark::DoNotOptimize(Joined.size());
  }
  State.SetItemsProcessed(State.iterations());
}

void benchArrayJoin(benchmark::State &State) {
  std::vector<Interval> Base = makeArrayEnv();
  for (auto _ : State) {
    // Array environments copy and join every cell.
    std::vector<Interval> Then = Base, Else = Base;
    for (uint32_t I = 0; I < TouchedCells; ++I) {
      Then[(3 + I * 97) % EnvCells] = Interval(-1.0, I);
      Else[(5000 + I * 97) % EnvCells] = Interval(-1.0, I);
    }
    std::vector<Interval> Joined(EnvCells);
    for (uint32_t C = 0; C < EnvCells; ++C)
      Joined[C] = Then[C].join(Else[C]);
    benchmark::DoNotOptimize(Joined.data());
  }
  State.SetItemsProcessed(State.iterations());
}

void benchSharedTreeEquality(benchmark::State &State) {
  PersistentMap<Interval> A = makeSharedEnv();
  PersistentMap<Interval> B = A;
  branchTouch(B, 777);
  for (auto _ : State) {
    bool Eq = PersistentMap<Interval>::equal(A, B);
    benchmark::DoNotOptimize(Eq);
  }
}

void benchArrayEquality(benchmark::State &State) {
  std::vector<Interval> A = makeArrayEnv();
  std::vector<Interval> B = A;
  B[777] = Interval(-1, 1);
  for (auto _ : State) {
    bool Eq = (A == B);
    benchmark::DoNotOptimize(Eq);
  }
}

BENCHMARK(benchSharedTreeJoin);
BENCHMARK(benchArrayJoin);
BENCHMARK(benchSharedTreeEquality);
BENCHMARK(benchArrayEquality);

/// One-shot wall-clock comparison for the summary row.
double timeIt(void (*Fn)(benchmark::State &), int Iters) {
  // Rough manual timing: run the body via a bare loop equivalent.
  (void)Fn;
  (void)Iters;
  return 0.0;
}
} // namespace

int main(int argc, char **argv) {
  std::puts("E5 — abstract-union cost: sharable trees vs arrays "
            "(Sect. 6.1.2)");
  std::printf("workload: %u-cell environment, %u cells touched per branch, "
              "join at the test merge.\n",
              EnvCells, TouchedCells);
  std::puts("paper: \"the execution time was divided by seven\" on a "
            "10,000-line example;");
  std::puts("the array join is Theta(cells), the shared join "
            "Theta(diff * log cells).");
  std::puts("(see the benchmark items/sec below: SharedTreeJoin should beat "
            "ArrayJoin by a");
  std::puts("large factor)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
