#!/usr/bin/env bash
# Robustness/chaos smoke: the fault-tolerant service mode under deadlines,
# injected faults, and memory budgets. Proves, end-to-end over real daemon
# processes:
#
#   1. deadline governance: a 1 ms deadline on an 8-kLOC Sect. 4 family
#      member comes back as a structured `timeout` error (client exit 4) —
#      and the SAME daemon then serves every golden example byte-identical
#      to the one-shot CLI, so the casualty cost it nothing;
#   2. fault isolation: with ASTRAL_FAULT arming an analysis-side site
#      (frontend), the faulted request fails structurally and the daemon
#      survives to serve the identical request correctly afterwards;
#   3. transport self-healing: with the response path armed (socket-write +
#      torn-frame), a client with --connect-retries recovers transparently
#      and still gets the byte-identical report;
#   4. budget determinism: a memory-budget run that degrades produces
#      byte-identical reports (labeled "degraded": true) across the
#      jobs x partition-dispatch x call-dispatch matrix (a budget also
#      disables the call-summary memo, so this doubles as the proof that
#      the auto-disable keeps the degradation ladder deterministic).
#
# On failure the scratch dir (reports, client/daemon stderr, the emitted
# family members) is preserved under <build-dir>/chaos-smoke-artifacts —
# the stable path CI uploads as a workflow artifact.
#
# Usage: scripts/chaos_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/tools/astral-cli"
if [[ ! -x "$CLI" ]]; then
  echo "chaos_smoke: missing $CLI (build first)" >&2
  exit 1
fi

CASES="quickstart filter_verification alarm_investigation flight_control
       interp_table rate_limiter_clocked partitioned_switch
       thread_handoff thread_mode_table"
NCASES=$(echo $CASES | wc -w)

WORK=$(mktemp -d)
SERVE_PID=
SOCK=

ARTIFACTS="$BUILD/chaos-smoke-artifacts"

cleanup() {
  local rc=$?
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  if [[ $rc -ne 0 ]]; then
    rm -rf "$ARTIFACTS"
    mkdir -p "$ARTIFACTS"
    cp -r "$WORK"/. "$ARTIFACTS"/ 2>/dev/null || true
    echo "chaos_smoke: failure artifacts preserved in $ARTIFACTS" >&2
  fi
  rm -rf "$WORK"
  [[ -n "$SOCK" ]] && rm -f "$SOCK"
}
trap cleanup EXIT

# Wall-clock is the one environment-dependent report field.
normalize() {
  sed -E 's/"analysis_seconds": [0-9.eE+-]+/"analysis_seconds": "<time>"/'
}

start_daemon() { # $1 = tag, env may carry ASTRAL_FAULT
  SOCK=$(mktemp -u "/tmp/astral-chaos-$1.XXXXXX.sock")
  "$CLI" serve --socket="$SOCK" --quiet 2>"$WORK/daemon-$1.err" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    if "$CLI" client --socket="$SOCK" status >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
      echo "chaos_smoke: daemon ($1) died during startup" >&2
      cat "$WORK/daemon-$1.err" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "chaos_smoke: daemon ($1) never became ready" >&2
  exit 1
}

stop_daemon() {
  "$CLI" client --socket="$SOCK" shutdown >/dev/null 2>&1 || true
  rc=0
  wait "$SERVE_PID" || rc=$?
  SERVE_PID=
  if [[ $rc -ne 0 ]]; then
    echo "chaos_smoke: daemon exited $rc after shutdown (want 0)" >&2
    fail=1
  fi
  rm -f "$SOCK"
  SOCK=
}

fail=0

# The Sect. 4 family members the governance checks run on.
"$CLI" emit-family --lines=8000 --seed=1234 >"$WORK/fam8k.c"
"$CLI" emit-family --lines=2000 --seed=7 >"$WORK/fam2k.c"

echo "== chaos 1: deadline expiry is structured, and costs the daemon nothing =="
start_daemon ddl
rc=0
"$CLI" client --socket="$SOCK" analyze "$WORK/fam8k.c" --json \
    --deadline-ms=1 >"$WORK/ddl.out" 2>"$WORK/ddl.err" || rc=$?
if [[ $rc -ne 4 ]]; then
  echo "chaos_smoke: deadline-expired analyze exited $rc (want 4):" >&2
  cat "$WORK/ddl.err" >&2
  fail=1
fi
if ! grep -q '\[timeout\]' "$WORK/ddl.err"; then
  echo "chaos_smoke: expired request did not surface error_kind timeout:" >&2
  cat "$WORK/ddl.err" >&2
  fail=1
fi
# The same daemon now serves every golden byte-identical to the one-shot CLI.
for case in $CASES; do
  input="examples/$case.cpp"
  "$CLI" "$input" --json >"$WORK/oneshot.json"
  if ! "$CLI" client --socket="$SOCK" analyze "$input" --json \
      >"$WORK/client.json" 2>"$WORK/client.err"; then
    echo "chaos_smoke: post-timeout analyze $case failed:" >&2
    cat "$WORK/client.err" >&2
    fail=1
    continue
  fi
  if ! diff <(normalize <"$WORK/oneshot.json") \
            <(normalize <"$WORK/client.json") >/dev/null; then
    echo "chaos_smoke: $case differs from one-shot after the timeout" \
         "casualty (byte-identity violation)" >&2
    fail=1
  fi
done
stop_daemon
echo "chaos_smoke: deadline governance ok ($NCASES golden(s) byte-identical)"

echo "== chaos 2: an injected analysis fault is isolated to its request =="
export ASTRAL_FAULT=frontend:1
start_daemon fault
unset ASTRAL_FAULT # Arm only the daemon, never the one-shot runs below.
rc=0
"$CLI" client --socket="$SOCK" analyze examples/quickstart.cpp --json \
    >"$WORK/faulted.out" 2>"$WORK/faulted.err" || rc=$?
if [[ $rc -eq 0 ]] || ! grep -q '\[internal\]' "$WORK/faulted.err"; then
  echo "chaos_smoke: armed frontend fault did not produce a structured" \
       "internal error (exit $rc):" >&2
  cat "$WORK/faulted.err" >&2
  fail=1
fi
# One-shot arming: the identical request must now succeed, byte-identical.
"$CLI" examples/quickstart.cpp --json >"$WORK/oneshot.json"
if ! "$CLI" client --socket="$SOCK" analyze examples/quickstart.cpp --json \
    >"$WORK/client.json" 2>"$WORK/client.err"; then
  echo "chaos_smoke: daemon did not survive the injected fault:" >&2
  cat "$WORK/client.err" >&2
  fail=1
elif ! diff <(normalize <"$WORK/oneshot.json") \
            <(normalize <"$WORK/client.json") >/dev/null; then
  echo "chaos_smoke: post-fault report differs from one-shot" >&2
  fail=1
fi
stop_daemon
echo "chaos_smoke: fault isolation ok"

echo "== chaos 3: client retries heal a torn response path =="
export ASTRAL_FAULT=socket-write:1,torn-frame:1
start_daemon torn
unset ASTRAL_FAULT
if ! "$CLI" client --socket="$SOCK" --connect-retries=3 analyze \
    examples/quickstart.cpp --json >"$WORK/client.json" 2>"$WORK/client.err"; then
  echo "chaos_smoke: retries did not recover from the torn transport:" >&2
  cat "$WORK/client.err" >&2
  fail=1
elif ! diff <(normalize <"$WORK/oneshot.json") \
            <(normalize <"$WORK/client.json") >/dev/null; then
  echo "chaos_smoke: retried report differs from one-shot" >&2
  fail=1
fi
stop_daemon
echo "chaos_smoke: transport self-healing ok"

echo "== chaos 4: budget degradation is deterministic across the matrix =="
ref=
for jobs in 1 2 8; do
  for pd in seq par; do
    for cd in seq par; do
      out="$WORK/deg-$jobs-$pd-$cd.json"
      if ! "$CLI" "$WORK/fam2k.c" --json --memory-budget-bytes=500000 \
          --jobs=$jobs --partition-dispatch=$pd --call-dispatch=$cd \
          >"$out" 2>"$WORK/deg.err"; then
        echo "chaos_smoke: budget run jobs=$jobs pd=$pd cd=$cd failed:" >&2
        cat "$WORK/deg.err" >&2
        fail=1
        continue
      fi
      if ! grep -q '"degraded": true' "$out"; then
        echo "chaos_smoke: jobs=$jobs pd=$pd cd=$cd did not degrade under" \
             "the budget" >&2
        fail=1
      fi
      normalize <"$out" >"$out.norm"
      if [[ -z "$ref" ]]; then
        ref="$out.norm"
      elif ! diff "$ref" "$out.norm" >/dev/null; then
        echo "chaos_smoke: degraded report jobs=$jobs pd=$pd cd=$cd differs" \
             "from jobs=1 pd=seq cd=seq (budget determinism violation)" >&2
        diff "$ref" "$out.norm" | head -20 >&2 || true
        fail=1
      fi
    done
  done
done
echo "chaos_smoke: budget determinism ok (12 matrix cells)"

if [[ $fail -ne 0 ]]; then
  echo "chaos_smoke: FAILED" >&2
  exit 1
fi
echo "chaos_smoke: all checks passed"
