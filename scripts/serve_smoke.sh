#!/usr/bin/env bash
# Service-mode conformance smoke: start an `astral serve` daemon, submit
# every golden example through `astral-cli client` twice, and require
#
#   1. every client report byte-identical (after the standard
#      analysis_seconds normalization) to the one-shot CLI on the same
#      input — cold AND warm, so the golden suite doubles as protocol
#      conformance;
#   2. observable incremental reanalysis: round 2 must hit the content-hash
#      artifact cache for every file (frontend_hits grows by the full case
#      count between the cache-stats snapshots);
#   3. a clean lifecycle: shutdown via the client, daemon exits 0, socket
#      file unlinked.
#
# On failure the scratch dir (mismatching reports, client/daemon stderr) is
# preserved under <build-dir>/serve-smoke-artifacts — the stable path CI
# uploads as a workflow artifact.
#
# Usage: scripts/serve_smoke.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/tools/astral-cli"
if [[ ! -x "$CLI" ]]; then
  echo "serve_smoke: missing $CLI (build first)" >&2
  exit 1
fi

CASES="quickstart filter_verification alarm_investigation flight_control
       interp_table rate_limiter_clocked partitioned_switch
       thread_handoff thread_mode_table"
NCASES=$(echo $CASES | wc -w)

SOCK=$(mktemp -u /tmp/astral-serve-smoke.XXXXXX.sock)
WORK=$(mktemp -d)
SERVE_PID=

ARTIFACTS="$BUILD/serve-smoke-artifacts"

cleanup() {
  local rc=$?
  [[ -n "$SERVE_PID" ]] && kill "$SERVE_PID" 2>/dev/null || true
  if [[ $rc -ne 0 ]]; then
    # Keep the evidence where CI can upload it: the last oneshot/client
    # report pair, every client stderr, and the daemon's own stderr.
    rm -rf "$ARTIFACTS"
    mkdir -p "$ARTIFACTS"
    cp -r "$WORK"/. "$ARTIFACTS"/ 2>/dev/null || true
    echo "serve_smoke: failure artifacts preserved in $ARTIFACTS" >&2
  fi
  rm -rf "$WORK" "$SOCK"
}
trap cleanup EXIT

# Wall-clock is the one environment-dependent report field.
normalize() {
  sed -E 's/"analysis_seconds": [0-9.eE+-]+/"analysis_seconds": "<time>"/'
}

# Pulls one flat numeric field out of a cache-stats/status response line.
json_field() { # $1=key $2=json-line
  sed -nE "s/.*\"$1\":([0-9]+).*/\1/p" <<<"$2"
}

"$CLI" serve --socket="$SOCK" --quiet 2>"$WORK/daemon.err" &
SERVE_PID=$!

# The daemon binds before accepting; wait for the socket to answer.
for _ in $(seq 1 100); do
  if "$CLI" client --socket="$SOCK" status >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke: daemon died during startup" >&2
    cat "$WORK/daemon.err" >&2
    exit 1
  fi
  sleep 0.1
done

fail=0
stats_before=$("$CLI" client --socket="$SOCK" cache-stats)
hits_before=$(json_field frontend_hits "$stats_before")

for round in 1 2; do
  for case in $CASES; do
    input="examples/$case.cpp"
    "$CLI" "$input" --json >"$WORK/oneshot.json"
    rc=0
    "$CLI" client --socket="$SOCK" analyze "$input" --json \
        >"$WORK/client.json" 2>"$WORK/client.err" || rc=$?
    if [[ $rc -ne 0 ]]; then
      echo "serve_smoke: round $round: client analyze $case exited $rc:" >&2
      cat "$WORK/client.err" >&2
      fail=1
      continue
    fi
    if ! diff <(normalize <"$WORK/oneshot.json") \
              <(normalize <"$WORK/client.json") >/dev/null; then
      echo "serve_smoke: round $round: $case daemon report differs from" \
           "the one-shot CLI (byte-identity violation)" >&2
      diff <(normalize <"$WORK/oneshot.json") \
           <(normalize <"$WORK/client.json") | head -30 >&2 || true
      fail=1
    fi
  done
  echo "serve_smoke: round $round ok ($NCASES case(s) byte-identical)"
done

# Round 1 populated the cache, so round 2 must have hit for every case.
stats_after=$("$CLI" client --socket="$SOCK" cache-stats)
hits_after=$(json_field frontend_hits "$stats_after")
if (( hits_after - hits_before < NCASES )); then
  echo "serve_smoke: resubmission did not hit the artifact cache" \
       "(frontend_hits $hits_before -> $hits_after, expected +$NCASES):" >&2
  echo "  $stats_after" >&2
  fail=1
else
  echo "serve_smoke: cache proof ok (frontend_hits $hits_before -> $hits_after)"
fi

"$CLI" client --socket="$SOCK" shutdown >/dev/null
rc=0
wait "$SERVE_PID" || rc=$?
SERVE_PID=
if [[ $rc -ne 0 ]]; then
  echo "serve_smoke: daemon exited $rc after shutdown (want 0)" >&2
  fail=1
fi
if [[ -e "$SOCK" ]]; then
  echo "serve_smoke: socket file survived shutdown" >&2
  fail=1
fi

if [[ $fail -ne 0 ]]; then
  echo "serve_smoke: FAILED" >&2
  exit 1
fi
echo "serve_smoke: all checks passed"
