#!/usr/bin/env bash
# Nightly bench trajectory: runs the paper-experiment harnesses that track
# analyzer performance — bench_fig2_scaling (time vs kLOC, Fig. 2),
# bench_packing_opt (abstract-state memory, Sect. 7.2.2),
# bench_parallel_jobs (speedup vs --jobs, the Monniaux parallel direction)
# and bench_octagon_cost's closure-discipline comparison — and folds their
# numbers into machine-readable BENCH_domains.json, BENCH_parallel.json and
# BENCH_octagon.json, so this and future perf PRs show their trajectory.
#
# Usage: scripts/bench_domains.sh [build-dir] [output.json] [parallel.json] \
#                                 [octagon.json]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
OUT=${2:-BENCH_domains.json}
PAR_OUT=${3:-BENCH_parallel.json}
OCT_OUT=${4:-BENCH_octagon.json}

FIG2="$BUILD/bench/bench_fig2_scaling"
PACKING="$BUILD/bench/bench_packing_opt"
PARALLEL="$BUILD/bench/bench_parallel_jobs"
OCTCOST="$BUILD/bench/bench_octagon_cost"
for bin in "$FIG2" "$PACKING" "$PARALLEL" "$OCTCOST"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_domains: missing $bin (build with -DASTRAL_BUILD_BENCH=ON)" >&2
    exit 1
  fi
done

FIG2_OUT=$("$FIG2" 2>/dev/null)
PACKING_OUT=$("$PACKING" 2>/dev/null)

# bench_fig2_scaling data rows: lines kLOC time(s) s/kLOC alarms cells.
SCALING_JSON=$(printf '%s\n' "$FIG2_OUT" | awk '
  /^ +[0-9]+ +[0-9.]+ +[0-9.]+ +[0-9.]+ +[0-9]+ +[0-9]+ *$/ {
    rows[n++] = sprintf("    {\"lines\": %s, \"kloc\": %s, \"seconds\": %s, \"s_per_kloc\": %s, \"alarms\": %s, \"cells\": %s}",
                        $1, $2, $3, $4, $5, $6)
  }
  END { for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i + 1 < n ? "," : "") }')

# bench_packing_opt summary rows: "<label> <all-packs> <useful-only>".
mem_all=$(printf '%s\n' "$PACKING_OUT" | awk '/abstract-state peak/ {print $(NF-1)}')
mem_opt=$(printf '%s\n' "$PACKING_OUT" | awk '/abstract-state peak/ {print $NF}')
time_all=$(printf '%s\n' "$PACKING_OUT" | awk '/analysis time/ {print $(NF-1)}')
time_opt=$(printf '%s\n' "$PACKING_OUT" | awk '/analysis time/ {print $NF}')
packs_all=$(printf '%s\n' "$PACKING_OUT" | awk '/octagon packs/ {print $(NF-1)}')
packs_opt=$(printf '%s\n' "$PACKING_OUT" | awk '/octagon packs/ {print $NF}')

if [[ -z "$SCALING_JSON" || -z "$mem_all" ]]; then
  echo "bench_domains: could not parse bench output" >&2
  exit 1
fi

GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)

cat > "$OUT" <<EOF
{
  "generated": "$DATE",
  "git": "$GIT_REV",
  "fig2_scaling": [
$SCALING_JSON
  ],
  "packing_opt": {
    "octagon_packs_all": $packs_all,
    "octagon_packs_useful": $packs_opt,
    "analysis_seconds_all": $time_all,
    "analysis_seconds_useful": $time_opt,
    "abstract_state_peak_mb_all": $mem_all,
    "abstract_state_peak_mb_useful": $mem_opt
  }
}
EOF

echo "bench_domains: wrote $OUT"

# ---------------------------------------------------------------------------
# BENCH_parallel.json: speedup-vs-jobs series from bench_parallel_jobs.
# Rows: "PARALLEL single jobs=N dispatch=seq|groups seconds=S speedup=X
#        alarms=A" (the pack-dispatch dimension isolates the grouped
#        transfer grain), "PARALLEL partition jobs=N dispatch=seq|par
#        seconds=S speedup=X reps=R" (the trace-partition grain on
#        examples/partitioned_switch.cpp), "PARALLEL call jobs=N
#        dispatch=seq|par seconds=S speedup=X reps=R" (the call-context
#        grain on the same example) and "PARALLEL batch jobs=N files=K
#        seconds=S speedup=X".
# ---------------------------------------------------------------------------
# Surface the bench's own diagnostic (e.g. "DETERMINISM VIOLATION ...") on
# failure — it prints to stdout, which the capture would otherwise swallow.
if ! PAR_RAW=$("$PARALLEL" 2>/dev/null); then
  echo "bench_domains: $PARALLEL failed:" >&2
  printf '%s\n' "$PAR_RAW" >&2
  exit 1
fi

par_series() { # $1 = single|batch
  printf '%s\n' "$PAR_RAW" | awk -v kind="$1" '
    $1 == "PARALLEL" && $2 == kind {
      jobs = seconds = speedup = dispatch = ""
      for (i = 3; i <= NF; i++) {
        split($i, kv, "=")
        if (kv[1] == "jobs") jobs = kv[2]
        if (kv[1] == "seconds") seconds = kv[2]
        if (kv[1] == "speedup") speedup = kv[2]
        if (kv[1] == "dispatch") dispatch = kv[2]
      }
      if (dispatch != "")
        rows[n++] = sprintf("    {\"jobs\": %s, \"dispatch\": \"%s\", \"seconds\": %s, \"speedup\": %s}",
                            jobs, dispatch, seconds, speedup)
      else
        rows[n++] = sprintf("    {\"jobs\": %s, \"seconds\": %s, \"speedup\": %s}",
                            jobs, seconds, speedup)
    }
    END { for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i + 1 < n ? "," : "") }'
}

SINGLE_JSON=$(par_series single)
PARTITION_JSON=$(par_series partition)
CALL_JSON=$(par_series call)
BATCH_JSON=$(par_series batch)
BATCH_FILES=$(printf '%s\n' "$PAR_RAW" | awk '
  $1 == "PARALLEL" && $2 == "batch" {
    for (i = 3; i <= NF; i++) { split($i, kv, "="); if (kv[1] == "files") { print kv[2]; exit } }
  }')

if [[ -z "$SINGLE_JSON" || -z "$PARTITION_JSON" || -z "$CALL_JSON" ||
      -z "$BATCH_JSON" ]]; then
  echo "bench_domains: could not parse bench_parallel_jobs output" >&2
  exit 1
fi

PAR_CORES=$(printf '%s\n' "$PAR_RAW" | awk '
  $1 == "PARALLEL" && $2 == "hardware" {
    for (i = 3; i <= NF; i++) { split($i, kv, "="); if (kv[1] == "cores") { print kv[2]; exit } }
  }')

cat > "$PAR_OUT" <<EOF
{
  "generated": "$DATE",
  "git": "$GIT_REV",
  "hardware_cores": ${PAR_CORES:-1},
  "single_file": [
$SINGLE_JSON
  ],
  "partition": [
$PARTITION_JSON
  ],
  "call": [
$CALL_JSON
  ],
  "batch": {
    "files": $BATCH_FILES,
    "series": [
$BATCH_JSON
    ]
  }
}
EOF

echo "bench_domains: wrote $PAR_OUT"

# ---------------------------------------------------------------------------
# BENCH_octagon.json: closure-discipline comparison from bench_octagon_cost.
# Rows: "OCTCLOSE lines=N kloc=K mode=full|incremental seconds=S
#        s_per_kloc=P closures_full=A closures_incremental=B alarms=C".
# The micro-benchmarks are skipped (--benchmark_filter matching nothing);
# only the whole-analyzer fig2 comparison feeds the JSON.
# ---------------------------------------------------------------------------
if ! OCT_RAW=$("$OCTCOST" --benchmark_filter='^$' 2>/dev/null); then
  echo "bench_domains: $OCTCOST failed:" >&2
  printf '%s\n' "$OCT_RAW" >&2
  exit 1
fi

OCT_JSON=$(printf '%s\n' "$OCT_RAW" | awk '
  $1 == "OCTCLOSE" && NF > 2 {
    lines = kloc = mode = seconds = perk = cf = ci = alarms = ""
    for (i = 2; i <= NF; i++) {
      split($i, kv, "=")
      if (kv[1] == "lines") lines = kv[2]
      if (kv[1] == "kloc") kloc = kv[2]
      if (kv[1] == "mode") mode = kv[2]
      if (kv[1] == "seconds") seconds = kv[2]
      if (kv[1] == "s_per_kloc") perk = kv[2]
      if (kv[1] == "closures_full") cf = kv[2]
      if (kv[1] == "closures_incremental") ci = kv[2]
      if (kv[1] == "alarms") alarms = kv[2]
    }
    if (lines == "") next
    rows[n++] = sprintf("    {\"lines\": %s, \"kloc\": %s, \"mode\": \"%s\", \"seconds\": %s, \"s_per_kloc\": %s, \"closures_full\": %s, \"closures_incremental\": %s, \"alarms\": %s}",
                        lines, kloc, mode, seconds, perk, cf, ci, alarms)
  }
  END { for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i + 1 < n ? "," : "") }')

if [[ -z "$OCT_JSON" ]]; then
  echo "bench_domains: could not parse bench_octagon_cost OCTCLOSE rows" >&2
  exit 1
fi

cat > "$OCT_OUT" <<EOJSON
{
  "generated": "$DATE",
  "git": "$GIT_REV",
  "members": [
$OCT_JSON
  ]
}
EOJSON

echo "bench_domains: wrote $OCT_OUT"
