#!/usr/bin/env bash
# Tier-1 verify plus the sanitizer configuration. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . -DASTRAL_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo
echo "== smoke: astral-cli end-to-end =="
build/tools/astral-cli examples/flight_control.cpp --dump-invariants >/dev/null
build/tools/astral-cli examples/quickstart.cpp --json --fail-on-alarms >/dev/null

echo
echo "all checks passed"
