#!/usr/bin/env bash
# Tier-1 verify plus the sanitizer configuration. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== sanitizers: ASan + UBSan build + ctest =="
cmake -B build-asan -S . -DASTRAL_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build build-asan -j "$JOBS"
ctest --test-dir build-asan --output-on-failure -j "$JOBS"

echo
echo "== tsan: ThreadSanitizer build + parallel suites =="
cmake -B build-tsan -S . -DASTRAL_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS"
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R "test_scheduler|test_analysis_session|test_iterator|test_domain_registry|test_octagon|test_pack_groups|test_partition_dispatch|test_call_dispatch|test_service|test_interference|test_cancellation"

echo
echo "== determinism matrix: jobs x pack-dispatch x partition-dispatch x call-dispatch (CI parity) =="
scripts/determinism_matrix.sh build

echo
echo "== parallel smoke: grouped + call dispatch regression gate (CI parity) =="
ASTRAL_BENCH_SMOKE=1 build/bench/bench_parallel_jobs

echo
echo "== serve smoke: daemon conformance + cache proof (CI parity) =="
scripts/serve_smoke.sh build

echo
echo "== chaos smoke: deadlines, fault injection, budget determinism (CI parity) =="
scripts/chaos_smoke.sh build

echo
echo "== smoke: astral-cli end-to-end =="
build/tools/astral-cli examples/flight_control.cpp --dump-invariants >/dev/null
build/tools/astral-cli examples/quickstart.cpp --json --fail-on-alarms >/dev/null
build/tools/astral-cli examples/rate_limiter_clocked.cpp --json --jobs=8 --fail-on-alarms >/dev/null
build/tools/astral-cli examples/flight_control.cpp --json --jobs=0 --pack-dispatch=seq >/dev/null
build/tools/astral-cli examples/partitioned_switch.cpp --json --jobs=8 --partition-dispatch=seq --dump-stats >/dev/null 2>&1
build/tools/astral-cli examples/partitioned_switch.cpp --json --jobs=8 --call-dispatch=seq --call-memo=off >/dev/null
build/tools/astral-cli examples/thread_handoff.cpp examples/thread_mode_table.cpp --json --jobs=8 >/dev/null
build-tsan/tools/astral-cli examples/quickstart.cpp examples/interp_table.cpp --json --jobs=8 >/dev/null
build-tsan/tools/astral-cli examples/partitioned_switch.cpp --json --jobs=8 --partition-dispatch=par >/dev/null
build-tsan/tools/astral-cli examples/partitioned_switch.cpp --json --jobs=8 --call-dispatch=par >/dev/null
build-tsan/tools/astral-cli examples/thread_handoff.cpp --json --jobs=8 >/dev/null

echo
echo "all checks passed"
