#!/usr/bin/env bash
# Multi-core determinism matrix: every golden example must produce a
# byte-identical JSON report across --jobs=1/2/8 x --pack-dispatch=seq/groups
# x --partition-dispatch=seq/par x --call-dispatch=seq/par (the
# all-sequential --jobs=1 report is the baseline). This is the first-class
# CI gate behind the parallel analyzer's determinism contract — the in-tree
# ctest goldens cover the same matrix per case, this script is the
# standalone/CI entry point and the scripts/check.sh parity hook.
#
# On partitioned_switch the gate additionally demands proof that the
# trace-partition dispatch and the call-context dispatch actually ran
# (parallel.partitions.dispatched > 0 and call_dispatch.dispatched > 0 in
# the --dump-stats census): byte-identity alone would also be satisfied
# by the parallel paths silently degenerating to the sequential loops.
#
# Mismatching reports are saved under <build-dir>/determinism-actual — the
# stable path CI uploads as a workflow artifact on failure.
#
# Usage: scripts/determinism_matrix.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/tools/astral-cli"
if [[ ! -x "$CLI" ]]; then
  echo "determinism_matrix: missing $CLI (build first)" >&2
  exit 1
fi
ACTUAL_DIR="$BUILD/determinism-actual"

CASES="quickstart filter_verification alarm_investigation flight_control
       interp_table rate_limiter_clocked partitioned_switch
       thread_handoff thread_mode_table"

# Wall-clock is the one environment-dependent report field.
normalize() {
  sed -E 's/"analysis_seconds": [0-9.eE+-]+/"analysis_seconds": "<time>"/'
}

STDERR_TMP=$(mktemp)
trap 'rm -f "$STDERR_TMP"' EXIT

# Runs one configuration, naming it on any non-zero exit (a crash here is
# exactly the regression class this gate exists to catch — it must not die
# silently under set -e).
run_cli() { # $1=input $2=jobs $3=pack-dispatch $4=partition-dispatch $5=call-dispatch
  local rc=0
  "$CLI" "$1" --json --jobs="$2" --pack-dispatch="$3" \
      --partition-dispatch="$4" --call-dispatch="$5" 2>"$STDERR_TMP" |
      normalize || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "determinism_matrix: $1 --jobs=$2 --pack-dispatch=$3" \
         "--partition-dispatch=$4 --call-dispatch=$5 exited with $rc:" >&2
    cat "$STDERR_TMP" >&2
    return 1
  fi
}

fail=0
for case in $CASES; do
  input="examples/$case.cpp"
  base=$(run_cli "$input" 1 seq seq seq) || { fail=1; continue; }
  for jobs in 1 2 8; do
    for disp in seq groups; do
      for pdisp in seq par; do
        for cdisp in seq par; do
          [[ "$jobs" == 1 && "$disp" == seq && "$pdisp" == seq &&
             "$cdisp" == seq ]] && continue
          out=$(run_cli "$input" "$jobs" "$disp" "$pdisp" "$cdisp") ||
              { fail=1; continue; }
          if [[ "$out" != "$base" ]]; then
            echo "DETERMINISM VIOLATION: $case --jobs=$jobs" \
                 "--pack-dispatch=$disp --partition-dispatch=$pdisp" \
                 "--call-dispatch=$cdisp" >&2
            diff <(printf '%s\n' "$base") <(printf '%s\n' "$out") | head -40 >&2 || true
            mkdir -p "$ACTUAL_DIR"
            printf '%s\n' "$base" >"$ACTUAL_DIR/$case.base.json"
            printf '%s\n' "$out" \
                >"$ACTUAL_DIR/$case.jobs$jobs.$disp.$pdisp.$cdisp.actual.json"
            fail=1
          fi
        done
      done
    done
  done
  echo "determinism_matrix: ok $case (jobs=1/2/8 x pack=seq/groups x" \
       "partition=seq/par x call=seq/par)"
done

# Liveness proof for the third grain: the partitioned example must actually
# fan partitions out under --partition-dispatch=par with a parallel pool.
dispatched=$("$CLI" examples/partitioned_switch.cpp --json --jobs=8 \
    --partition-dispatch=par --dump-stats 2>&1 >/dev/null |
    sed -nE 's/^parallel\.partitions\.dispatched = ([0-9]+)$/\1/p')
if [[ -z "$dispatched" || "$dispatched" -eq 0 ]]; then
  echo "determinism_matrix: partition dispatch never ran on" \
       "partitioned_switch (parallel.partitions.dispatched=${dispatched:-missing})" >&2
  fail=1
else
  echo "determinism_matrix: partition dispatch ran ($dispatched partition(s) dispatched)"
fi

# Liveness proof for the call-context grain: the partitioned example's
# clamp helper is called from a width-2 disjunction, so the call dispatch
# must actually fan out under --call-dispatch=par — and the call-summary
# memo must actually hit (the narrowing re-execution sees bitwise-identical
# call inputs), or the memo is dead weight.
cdispatched=$("$CLI" examples/partitioned_switch.cpp --json --jobs=8 \
    --call-dispatch=par --dump-stats 2>&1 >/dev/null |
    sed -nE 's/^call_dispatch\.dispatched = ([0-9]+)$/\1/p')
if [[ -z "$cdispatched" || "$cdispatched" -eq 0 ]]; then
  echo "determinism_matrix: call dispatch never ran on" \
       "partitioned_switch (call_dispatch.dispatched=${cdispatched:-missing})" >&2
  fail=1
else
  echo "determinism_matrix: call dispatch ran ($cdispatched call context(s) dispatched)"
fi
memo_hits=$("$CLI" examples/partitioned_switch.cpp --json --jobs=8 \
    --dump-stats 2>&1 >/dev/null |
    sed -nE 's/^iterator\.call_memo_hits = ([0-9]+)$/\1/p')
if [[ -z "$memo_hits" || "$memo_hits" -eq 0 ]]; then
  echo "determinism_matrix: call-summary memo never hit on" \
       "partitioned_switch (iterator.call_memo_hits=${memo_hits:-missing})" >&2
  fail=1
else
  echo "determinism_matrix: call-summary memo hit ($memo_hits hit(s))"
fi

# Liveness proof for the thread grain: the threaded example must actually
# run interference fixpoint rounds (a silently-skipped concurrency pass
# would still be byte-identical — at the wrong semantics).
rounds=$("$CLI" examples/thread_handoff.cpp --json --jobs=8 \
    --dump-stats 2>&1 >/dev/null |
    sed -nE 's/^concurrency\.rounds = ([0-9]+)$/\1/p')
if [[ -z "$rounds" || "$rounds" -eq 0 ]]; then
  echo "determinism_matrix: interference rounds never ran on" \
       "thread_handoff (concurrency.rounds=${rounds:-missing})" >&2
  fail=1
else
  echo "determinism_matrix: interference fixpoint ran ($rounds round(s))"
fi

if [[ $fail -ne 0 ]]; then
  echo "determinism_matrix: FAILED" >&2
  exit 1
fi
echo "determinism_matrix: all reports byte-identical"
