#!/usr/bin/env bash
# Multi-core determinism matrix: every golden example must produce a
# byte-identical JSON report across --jobs=1/2/8 x --pack-dispatch=seq/groups
# x --partition-dispatch=seq/par (the all-sequential --jobs=1 report is the
# baseline). This is the first-class CI gate behind the parallel analyzer's
# determinism contract — the in-tree ctest goldens cover the same matrix per
# case, this script is the standalone/CI entry point and the
# scripts/check.sh parity hook.
#
# On partitioned_switch the gate additionally demands proof that the
# trace-partition dispatch actually ran (parallel.partitions.dispatched > 0
# in the --dump-stats census): byte-identity alone would also be satisfied
# by the parallel path silently degenerating to the sequential loop.
#
# Usage: scripts/determinism_matrix.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${1:-build}
CLI="$BUILD/tools/astral-cli"
if [[ ! -x "$CLI" ]]; then
  echo "determinism_matrix: missing $CLI (build first)" >&2
  exit 1
fi

CASES="quickstart filter_verification alarm_investigation flight_control
       interp_table rate_limiter_clocked partitioned_switch
       thread_handoff thread_mode_table"

# Wall-clock is the one environment-dependent report field.
normalize() {
  sed -E 's/"analysis_seconds": [0-9.eE+-]+/"analysis_seconds": "<time>"/'
}

STDERR_TMP=$(mktemp)
trap 'rm -f "$STDERR_TMP"' EXIT

# Runs one configuration, naming it on any non-zero exit (a crash here is
# exactly the regression class this gate exists to catch — it must not die
# silently under set -e).
run_cli() { # $1=input $2=jobs $3=pack-dispatch $4=partition-dispatch
  local rc=0
  "$CLI" "$1" --json --jobs="$2" --pack-dispatch="$3" \
      --partition-dispatch="$4" 2>"$STDERR_TMP" | normalize || rc=$?
  if [[ $rc -ne 0 ]]; then
    echo "determinism_matrix: $1 --jobs=$2 --pack-dispatch=$3" \
         "--partition-dispatch=$4 exited with $rc:" >&2
    cat "$STDERR_TMP" >&2
    return 1
  fi
}

fail=0
for case in $CASES; do
  input="examples/$case.cpp"
  base=$(run_cli "$input" 1 seq seq) || { fail=1; continue; }
  for jobs in 1 2 8; do
    for disp in seq groups; do
      for pdisp in seq par; do
        [[ "$jobs" == 1 && "$disp" == seq && "$pdisp" == seq ]] && continue
        out=$(run_cli "$input" "$jobs" "$disp" "$pdisp") || { fail=1; continue; }
        if [[ "$out" != "$base" ]]; then
          echo "DETERMINISM VIOLATION: $case --jobs=$jobs" \
               "--pack-dispatch=$disp --partition-dispatch=$pdisp" >&2
          diff <(printf '%s\n' "$base") <(printf '%s\n' "$out") | head -40 >&2 || true
          fail=1
        fi
      done
    done
  done
  echo "determinism_matrix: ok $case (jobs=1/2/8 x pack=seq/groups x partition=seq/par)"
done

# Liveness proof for the third grain: the partitioned example must actually
# fan partitions out under --partition-dispatch=par with a parallel pool.
dispatched=$("$CLI" examples/partitioned_switch.cpp --json --jobs=8 \
    --partition-dispatch=par --dump-stats 2>&1 >/dev/null |
    sed -nE 's/^parallel\.partitions\.dispatched = ([0-9]+)$/\1/p')
if [[ -z "$dispatched" || "$dispatched" -eq 0 ]]; then
  echo "determinism_matrix: partition dispatch never ran on" \
       "partitioned_switch (parallel.partitions.dispatched=${dispatched:-missing})" >&2
  fail=1
else
  echo "determinism_matrix: partition dispatch ran ($dispatched partition(s) dispatched)"
fi

# Liveness proof for the fourth grain: the threaded example must actually
# run interference fixpoint rounds (a silently-skipped concurrency pass
# would still be byte-identical — at the wrong semantics).
rounds=$("$CLI" examples/thread_handoff.cpp --json --jobs=8 \
    --dump-stats 2>&1 >/dev/null |
    sed -nE 's/^concurrency\.rounds = ([0-9]+)$/\1/p')
if [[ -z "$rounds" || "$rounds" -eq 0 ]]; then
  echo "determinism_matrix: interference rounds never ran on" \
       "thread_handoff (concurrency.rounds=${rounds:-missing})" >&2
  fail=1
else
  echo "determinism_matrix: interference fixpoint ran ($rounds round(s))"
fi

if [[ $fail -ne 0 ]]; then
  echo "determinism_matrix: FAILED" >&2
  exit 1
fi
echo "determinism_matrix: all reports byte-identical"
